"""Per-run metric collection.

The paper's metrics (Sec. VI):

* **Successful ratio** — fraction of issued queries satisfied with the
  requested data before their time constraint expires.
* **Data access delay** — mean delay of *satisfied* queries (delay of a
  query is the time from issue to first data copy received).
* **Caching overhead** — "the average number of data copies being cached
  in the network": sampled periodically as cached copies per live data
  item and averaged over samples.
* **Replacement overhead** (Fig. 12c) — "the average number for data
  items to be replaced before expiration": items that changed holder
  during pairwise exchanges, normalised by data items generated.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.data import DataItem, Query
from repro.metrics.results import SimulationResult

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates events during one simulation run."""

    def __init__(self) -> None:
        self._queries: Dict[int, Query] = {}
        self._satisfied_at: Dict[int, float] = {}
        self._data_generated = 0
        self._copy_samples: List[float] = []
        self._replaced_items = 0
        self._exchanges = 0
        self._responses_emitted = 0
        self._responses_delivered = 0
        self._duplicate_deliveries = 0
        self._bits_transferred = 0
        self._pushes_completed = 0
        self._cache_lookups = 0
        self._cache_hits = 0

    # --- queries --------------------------------------------------------

    def on_query_created(self, query: Query) -> None:
        self._queries[query.query_id] = query

    def on_query_satisfied(self, query: Query, now: float) -> bool:
        """Record a delivery; returns True iff this is the first (useful)
        copy and it arrived within the constraint.

        Satisfaction is keyed on **distinct query ids**, never on
        delivery events: when several NCLs respond and more than one copy
        reaches the requester (the paper's overhead scenario, Sec. V-C),
        the extra copies are tallied as :attr:`duplicate_deliveries` and
        leave the successful ratio untouched.
        """
        if query.query_id in self._satisfied_at:
            self._duplicate_deliveries += 1
            return False
        if now > query.expires_at:
            return False
        if query.query_id not in self._queries:
            # Defensive: deliveries for unknown queries indicate a scheme
            # bug; count nothing rather than corrupt ratios.
            return False
        self._satisfied_at[query.query_id] = now
        return True

    def is_satisfied(self, query_id: int) -> bool:
        return query_id in self._satisfied_at

    def pending_queries(self, now: float) -> int:
        """Issued queries still unsatisfied and unexpired at *now*."""
        return sum(
            1
            for qid, query in self._queries.items()
            if qid not in self._satisfied_at and now <= query.expires_at
        )

    # --- data and caching ----------------------------------------------

    def on_data_generated(self, item: DataItem) -> None:
        self._data_generated += 1

    def on_push_completed(self) -> None:
        self._pushes_completed += 1

    def sample_copies_per_item(self, cached_copies: int, live_items: int) -> None:
        """One caching-overhead sample: copies currently cached network-wide
        divided by currently live data items."""
        if live_items > 0:
            self._copy_samples.append(cached_copies / live_items)

    def on_exchange(self, moved_items: int, bits: int) -> None:
        self._exchanges += 1
        self._replaced_items += moved_items
        self._bits_transferred += bits

    def on_response_emitted(self) -> None:
        self._responses_emitted += 1

    def on_response_delivered(self) -> None:
        self._responses_delivered += 1

    def on_transfer(self, bits: int) -> None:
        self._bits_transferred += bits

    def on_cache_lookup(self, hit: bool) -> None:
        """One attempt to serve a query locally; *hit* iff a cached
        (buffer) copy answered."""
        self._cache_lookups += 1
        if hit:
            self._cache_hits += 1

    # --- summary -----------------------------------------------------------

    @property
    def queries_issued(self) -> int:
        return len(self._queries)

    @property
    def queries_satisfied(self) -> int:
        """Distinct queries satisfied in time (never delivery events)."""
        return len(self._satisfied_at)

    @property
    def duplicate_deliveries(self) -> int:
        """Deliveries for already-satisfied queries (redundant copies)."""
        return self._duplicate_deliveries

    @property
    def responses_delivered(self) -> int:
        return self._responses_delivered

    @property
    def cache_lookups(self) -> int:
        return self._cache_lookups

    @property
    def cache_hits(self) -> int:
        return self._cache_hits

    def finalize(self, name: str, seed: int) -> SimulationResult:
        """Freeze the run into a :class:`SimulationResult`."""
        delays = [
            self._satisfied_at[qid] - self._queries[qid].created_at
            for qid in self._satisfied_at
        ]
        issued = len(self._queries)
        return SimulationResult(
            name=name,
            seed=seed,
            queries_issued=issued,
            queries_satisfied=len(self._satisfied_at),
            successful_ratio=(len(self._satisfied_at) / issued) if issued else 0.0,
            mean_access_delay=(sum(delays) / len(delays)) if delays else float("nan"),
            caching_overhead=(
                sum(self._copy_samples) / len(self._copy_samples)
                if self._copy_samples
                else 0.0
            ),
            data_generated=self._data_generated,
            replaced_items=self._replaced_items,
            replacement_overhead=(
                self._replaced_items / self._data_generated
                if self._data_generated
                else 0.0
            ),
            exchanges=self._exchanges,
            responses_emitted=self._responses_emitted,
            responses_delivered=self._responses_delivered,
            bits_transferred=self._bits_transferred,
        )
