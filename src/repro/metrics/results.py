"""Result records and cross-seed aggregation.

The paper repeats each simulation "multiple times with randomly generated
data and queries for statistical convergence"; :func:`aggregate_results`
mirrors that by averaging :class:`SimulationResult`s over seeds and
attaching normal-approximation confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = ["SimulationResult", "AggregateResult", "aggregate_results"]


@dataclass(frozen=True)
class SimulationResult:
    """Metrics of a single seeded run."""

    name: str
    seed: int
    queries_issued: int
    queries_satisfied: int
    successful_ratio: float
    mean_access_delay: float      # seconds; NaN when nothing was satisfied
    caching_overhead: float       # mean cached copies per live data item
    data_generated: int
    replaced_items: int
    replacement_overhead: float   # replaced items per generated data item
    exchanges: int
    responses_emitted: int
    responses_delivered: int
    bits_transferred: int
    duplicate_deliveries: int = 0  # redundant copies for satisfied queries
    late_deliveries: int = 0       # copies arriving past the constraint

    def as_row(self) -> Dict[str, object]:
        """Flat dict for report tables."""
        return {
            "scheme": self.name,
            "seed": self.seed,
            "queries": self.queries_issued,
            "satisfied": self.queries_satisfied,
            "ratio": round(self.successful_ratio, 4),
            "delay_h": (
                round(self.mean_access_delay / 3600.0, 2)
                if not math.isnan(self.mean_access_delay)
                else float("nan")
            ),
            "copies_per_item": round(self.caching_overhead, 3),
            "repl_overhead": round(self.replacement_overhead, 3),
        }


@dataclass(frozen=True)
class AggregateResult:
    """Mean ± half-width (95% normal CI) over repeated seeded runs."""

    name: str
    runs: int
    successful_ratio: float
    successful_ratio_ci: float
    mean_access_delay: float
    mean_access_delay_ci: float
    caching_overhead: float
    caching_overhead_ci: float
    replacement_overhead: float
    queries_issued: float

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.name,
            "runs": self.runs,
            "ratio": round(self.successful_ratio, 4),
            "ratio_ci": round(self.successful_ratio_ci, 4),
            "delay_h": round(self.mean_access_delay / 3600.0, 2),
            "delay_ci_h": round(self.mean_access_delay_ci / 3600.0, 2),
            "copies_per_item": round(self.caching_overhead, 3),
            "repl_overhead": round(self.replacement_overhead, 3),
        }


def _mean_and_ci(values: Sequence[float]) -> tuple:
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return float("nan"), float("nan")
    mean = sum(finite) / len(finite)
    if len(finite) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in finite) / (len(finite) - 1)
    half_width = 1.96 * math.sqrt(variance / len(finite))
    return mean, half_width


def aggregate_results(results: Sequence[SimulationResult]) -> AggregateResult:
    """Aggregate repeated runs of the *same* scheme configuration."""
    if not results:
        raise ValueError("cannot aggregate an empty result set")
    names = {r.name for r in results}
    if len(names) > 1:
        raise ValueError(f"refusing to aggregate across schemes: {sorted(names)}")
    ratio, ratio_ci = _mean_and_ci([r.successful_ratio for r in results])
    delay, delay_ci = _mean_and_ci([r.mean_access_delay for r in results])
    copies, copies_ci = _mean_and_ci([r.caching_overhead for r in results])
    repl, _ = _mean_and_ci([r.replacement_overhead for r in results])
    queries, _ = _mean_and_ci([float(r.queries_issued) for r in results])
    return AggregateResult(
        name=results[0].name,
        runs=len(results),
        successful_ratio=ratio,
        successful_ratio_ci=ratio_ci,
        mean_access_delay=delay,
        mean_access_delay_ci=delay_ci,
        caching_overhead=copies,
        caching_overhead_ci=copies_ci,
        replacement_overhead=repl,
        queries_issued=queries,
    )
