"""Evaluation metrics (paper Sec. VI).

* :mod:`repro.metrics.collector` — per-run collection of the paper's
  three headline metrics (successful ratio, data access delay, caching
  overhead) plus the replacement overhead of Fig. 12(c).
* :mod:`repro.metrics.results` — immutable result records and
  aggregation across repeated seeded runs (mean ± confidence interval).
"""

from repro.metrics.collector import MetricsCollector
from repro.metrics.results import AggregateResult, SimulationResult, aggregate_results

__all__ = [
    "MetricsCollector",
    "SimulationResult",
    "AggregateResult",
    "aggregate_results",
]
