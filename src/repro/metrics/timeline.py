"""Time-series metric collection.

The headline metrics of Sec. VI are scalars per run; for analysis and
debugging it is often more useful to watch them evolve over simulated
time — how quickly the NCLs warm up with copies, when the successful
ratio stabilises, how buffer occupancy breathes with data churn.
:class:`TimelineRecorder` accumulates periodic samples the simulator's
``SAMPLE_METRICS`` events can feed, and exports them as
:class:`repro.experiments.figures.Series`-compatible columns.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["TimelinePoint", "TimelineRecorder"]


@dataclass(frozen=True)
class TimelinePoint:
    """One snapshot of the running system."""

    time: float
    live_items: int
    cached_copies: int
    queries_issued: int
    queries_satisfied: int
    mean_buffer_occupancy: float

    @property
    def copies_per_item(self) -> float:
        return self.cached_copies / self.live_items if self.live_items else 0.0

    @property
    def running_ratio(self) -> float:
        return (
            self.queries_satisfied / self.queries_issued if self.queries_issued else 0.0
        )


class TimelineRecorder:
    """Accumulates :class:`TimelinePoint`s in time order."""

    def __init__(self) -> None:
        self._points: List[TimelinePoint] = []

    def record(
        self,
        time: float,
        live_items: int,
        cached_copies: int,
        queries_issued: int,
        queries_satisfied: int,
        mean_buffer_occupancy: float,
    ) -> None:
        if self._points and time < self._points[-1].time:
            raise ValueError("timeline samples must be time-ordered")
        self._points.append(
            TimelinePoint(
                time=time,
                live_items=live_items,
                cached_copies=cached_copies,
                queries_issued=queries_issued,
                queries_satisfied=queries_satisfied,
                mean_buffer_occupancy=mean_buffer_occupancy,
            )
        )

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> Sequence[TimelinePoint]:
        return tuple(self._points)

    def column(self, name: str) -> List[float]:
        """Extract one column by attribute/property name."""
        if not self._points:
            return []
        if not hasattr(self._points[0], name):
            raise AttributeError(f"timeline points have no column {name!r}")
        return [float(getattr(p, name)) for p in self._points]

    def as_dict(self) -> Dict[str, List[float]]:
        """All columns, keyed by name (ready for CSV/plotting)."""
        names = (
            "time",
            "live_items",
            "cached_copies",
            "copies_per_item",
            "queries_issued",
            "queries_satisfied",
            "running_ratio",
            "mean_buffer_occupancy",
        )
        return {name: self.column(name) for name in names}

    def to_csv(self, path: str) -> None:
        """Write all columns as CSV (the ``--timeline-out`` CLI format)."""
        data = self.as_dict()
        columns = list(data)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(columns)
            for i in range(len(self)):
                writer.writerow([data[name][i] for name in columns])
