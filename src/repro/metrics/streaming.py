"""Bounded-memory streaming statistics (heavy-traffic metrics path).

Two classic sketches back the collector's streaming mode:

* :class:`ReservoirSampler` — Vitter's Algorithm R: a uniform sample of
  fixed capacity over a stream of unknown length.  Used to keep a
  representative set of access delays without the O(queries) delay
  list.
* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac, 1985): an
  online quantile estimate from five markers, O(1) state and O(1) per
  observation.  Used for the running delay percentiles exported to the
  time-series telemetry.

Both are deterministic functions of their input stream (the reservoir
additionally of its RNG stream), so the streaming collector preserves
the repo's bitwise reproducibility contracts.
"""

from __future__ import annotations

import bisect
from typing import List, NamedTuple, Tuple

import numpy as np

__all__ = ["ReservoirSampler", "ReservoirView", "P2Quantile", "SketchView"]


class SketchView(NamedTuple):
    """O(1) frozen view of a :class:`P2Quantile`: observation count plus
    the current estimate.  The health monitor captures one per window;
    the count is monotone over the stream, which windowed-delta
    consumers rely on (property-tested)."""

    count: int
    estimate: float


class ReservoirView(NamedTuple):
    """O(1) frozen view of a :class:`ReservoirSampler`: observations
    seen (monotone) and samples currently held (≤ capacity)."""

    count: int
    held: int


class ReservoirSampler:
    """Uniform fixed-size sample of a stream (Vitter's Algorithm R)."""

    def __init__(self, capacity: int, rng: np.random.Generator):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self._capacity = int(capacity)
        self._rng = rng
        self._samples: List[float] = []
        self._count = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Observations seen (≥ len(samples))."""
        return self._count

    @property
    def samples(self) -> Tuple[float, ...]:
        """The current sample, in retention order."""
        return tuple(self._samples)

    def observe(self, value: float) -> None:
        self._count += 1
        if len(self._samples) < self._capacity:
            self._samples.append(value)
            return
        # Element i of the stream replaces a reservoir slot with
        # probability capacity/i — one integer draw per observation.
        slot = int(self._rng.integers(0, self._count))
        if slot < self._capacity:
            self._samples[slot] = value

    def view(self) -> ReservoirView:
        """Cheap frozen (count, held) view — the windowed-delta probe."""
        return ReservoirView(count=self._count, held=len(self._samples))

    def quantile(self, q: float) -> float:
        """Empirical quantile of the reservoir (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class P2Quantile:
    """Online quantile estimation with the P² algorithm (O(1) state).

    Five markers track (min, q/2, q, (1+q)/2, max); marker heights are
    adjusted per observation with a piecewise-parabolic fit.  Until five
    observations arrive the estimate falls back to the exact small-sample
    quantile.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self._q = q
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: Tuple[float, ...] = (
            0.0,
            q / 2.0,
            q,
            (1.0 + q) / 2.0,
            1.0,
        )
        self._count = 0

    @property
    def q(self) -> float:
        return self._q

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        self._count += 1
        if self._count <= 5:
            bisect.insort(self._initial, value)
            if self._count == 5:
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0 + 2.0 * (self._count - 1) * inc for inc in self._increments
                ]
            return

        heights = self._heights
        positions = self._positions
        # Locate the cell and clamp the extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i, inc in enumerate(self._increments):
            self._desired[i] += inc

        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (p[j] - p[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (NaN before any observation)."""
        if self._count == 0:
            return float("nan")
        if self._count <= 5:
            index = min(len(self._initial) - 1, int(self._q * len(self._initial)))
            return self._initial[index]
        return self._heights[2]

    def view(self) -> SketchView:
        """Cheap frozen (count, estimate) view — the windowed-delta probe."""
        return SketchView(count=self._count, estimate=self.value)
