"""Unit helpers and physical constants used throughout the reproduction.

The paper (Sec. VI-A) expresses data sizes in megabits (Mb), node buffers
in the range 200--600 Mb, link capacity as 2.1 Mb/s (Bluetooth EDR), and
time spans ranging from seconds (trace granularity) to months (data
lifetime sweeps).  Internally the library uses **bits** for sizes and
**seconds** for time; these helpers keep call sites readable and make the
unit of every literal explicit.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY
MONTH: float = 30 * DAY  # evaluation convention: one month = 30 days


def hours(value: float) -> float:
    """Convert *value* hours to seconds."""
    return value * HOUR


def days(value: float) -> float:
    """Convert *value* days to seconds."""
    return value * DAY


def weeks(value: float) -> float:
    """Convert *value* weeks to seconds."""
    return value * WEEK


def months(value: float) -> float:
    """Convert *value* months (30-day convention) to seconds."""
    return value * MONTH


# --- data sizes -----------------------------------------------------------

BIT: int = 1
KILOBIT: int = 10**3
MEGABIT: int = 10**6
GIGABIT: int = 10**9


def megabits(value: float) -> int:
    """Convert *value* megabits to an integral number of bits.

    Sizes are kept integral because the knapsack solver of Eq. (7) runs a
    dynamic program indexed by buffer capacity in discrete units.
    """
    return int(round(value * MEGABIT))


# --- link model -----------------------------------------------------------

#: Bluetooth EDR capacity used for every pairwise contact in the paper's
#: evaluation (Sec. VI-A): 2.1 Mb/s.
BLUETOOTH_EDR_BITS_PER_SECOND: float = 2.1 * MEGABIT


def transfer_budget_bits(capacity_bits_per_second: float, duration_seconds: float) -> int:
    """Number of bits transferable over a contact of the given duration."""
    if capacity_bits_per_second < 0 or duration_seconds < 0:
        raise ValueError("capacity and duration must be non-negative")
    return int(capacity_bits_per_second * duration_seconds)


def format_duration(seconds: float) -> str:
    """Human-readable rendering of a duration, used in reports.

    >>> format_duration(90)
    '1.5m'
    >>> format_duration(7200)
    '2.0h'
    """
    if seconds < MINUTE:
        return f"{seconds:.0f}s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f}m"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f}h"
    if seconds < WEEK:
        return f"{seconds / DAY:.1f}d"
    return f"{seconds / DAY:.0f}d"


def format_size(bits: float) -> str:
    """Human-readable rendering of a data size in bits.

    >>> format_size(2_000_000)
    '2.0Mb'
    """
    if bits >= GIGABIT:
        return f"{bits / GIGABIT:.2f}Gb"
    if bits >= MEGABIT:
        return f"{bits / MEGABIT:.1f}Mb"
    if bits >= KILOBIT:
        return f"{bits / KILOBIT:.1f}Kb"
    return f"{bits:.0f}b"
