"""Long-lived batch replay — the ``repro serve`` heavy-traffic runner.

A :class:`ServeSession` fits the network **once** (warm-up, NCL
selection, buffer assignment) and then replays query batches against
the fitted state without any per-batch setup: each
:meth:`ServeSession.run_batch` advances the simulation by a whole
number of query rounds, cycling the trace's evaluation contacts (window
*c* replays contact *i* at its original time shifted by
``c · eval_duration``) while the periodic data/query/sample rounds
continue on their drift-free ``warmup_end + k·period`` grid.

Throughput is measured per batch as wall-clock queries/second and
travels in :class:`BatchResult` — never inside the frozen
:class:`~repro.metrics.results.SimulationResult`, which stays a pure
function of (trace, scheme, workload, seed) so the bitwise
parallel==serial contract is untouched.

By default a session runs the collector in bounded-memory streaming
mode (that is the point of serving heavy traffic); pass an explicit
:class:`~repro.sim.simulator.SimulatorConfig` to opt back into exact
collection.

Arrival-process caveats: the evaluation window announced to the arrival
process is the trace's own second half, so a ``flash_crowd`` fires in
the first replay cycle only, while ``diurnal``/``bursty`` modulation
continues across every cycle.

Live health: pass ``slo_rules``/``monitor_health`` to
:func:`serve_repeated` (or a :class:`~repro.obs.health.HealthMonitor`
to :class:`ServeSession`) and every batch also freezes a
:class:`~repro.obs.health.HealthSnapshot` whose windowed deltas sum
bit-exactly to the final collector totals — asserted per session via
:func:`~repro.obs.health.check_health_consistency`.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from repro.caching.base import CachingScheme
from repro.errors import ConfigurationError
from repro.metrics.results import SimulationResult
from repro.obs.health import HealthMonitor, HealthReport, check_health_consistency
from repro.obs.memory import MemorySample
from repro.obs.recorder import TraceRecorder
from repro.obs.slo import SLORule
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.contact import ContactTrace
from repro.workload.config import WorkloadConfig

__all__ = [
    "BatchResult",
    "ServeOutcome",
    "ServeSession",
    "serve_repeated",
    "summarize_throughput",
]


@dataclass(frozen=True)
class BatchResult:
    """Metric deltas and wall-clock throughput of one replayed batch."""

    index: int
    start: float              # window start (simulated seconds)
    end: float                # window end (simulated seconds)
    queries_issued: int       # delta over this batch
    queries_satisfied: int    # delta over this batch
    duplicate_deliveries: int
    late_deliveries: int
    pending_queries: int      # open queries at the window end
    wall_seconds: float

    @property
    def queries_per_second(self) -> float:
        """Wall-clock throughput (0 when the batch issued nothing)."""
        if self.wall_seconds <= 0.0 or self.queries_issued == 0:
            return 0.0
        return self.queries_issued / self.wall_seconds

    @property
    def deterministic_fields(self) -> Tuple[float, ...]:
        """Everything except wall-clock — the parallel==serial payload."""
        return (
            self.index,
            self.start,
            self.end,
            self.queries_issued,
            self.queries_satisfied,
            self.duplicate_deliveries,
            self.late_deliveries,
            self.pending_queries,
        )


class ServeSession:
    """One fitted network serving query batches until finalized."""

    def __init__(
        self,
        trace: ContactTrace,
        scheme: CachingScheme,
        workload: WorkloadConfig,
        config: Optional[SimulatorConfig] = None,
        recorder: Optional[TraceRecorder] = None,
        health: Optional[HealthMonitor] = None,
    ):
        if config is None:
            config = SimulatorConfig(streaming_metrics=True)
        self.simulator = Simulator(trace, scheme, workload, config, recorder)
        self.simulator.start_session()
        self.health = health
        if health is not None:
            health.attach(self.simulator)
        self._rounds_advanced = 0
        self._batch_index = 0
        self._finalized = False

    @property
    def query_period(self) -> float:
        return self.simulator.workload.query_generation_period

    @property
    def batches_run(self) -> int:
        return self._batch_index

    def run_batch(self, rounds: int = 1) -> BatchResult:
        """Advance the session by *rounds* query rounds and time it."""
        if self._finalized:
            raise ConfigurationError("session already finalized")
        if rounds < 1:
            raise ConfigurationError("a batch must cover at least one round")
        period = self.query_period
        warmup_end = self.simulator.warmup_end
        # Window edges by index multiplication (same anti-drift rule as
        # the round schedule), so batch boundaries and round times agree
        # for arbitrarily long sessions.
        start = warmup_end + self._rounds_advanced * period
        self._rounds_advanced += rounds
        until = warmup_end + self._rounds_advanced * period
        metrics = self.simulator.metrics
        before = (
            metrics.queries_issued,
            metrics.queries_satisfied,
            metrics.duplicate_deliveries,
            metrics.late_deliveries,
        )
        began = time.perf_counter()
        self.simulator.advance_session(until)
        wall = time.perf_counter() - began
        batch = BatchResult(
            index=self._batch_index,
            start=start,
            end=until,
            queries_issued=metrics.queries_issued - before[0],
            queries_satisfied=metrics.queries_satisfied - before[1],
            duplicate_deliveries=metrics.duplicate_deliveries - before[2],
            late_deliveries=metrics.late_deliveries - before[3],
            pending_queries=metrics.pending_queries(until),
            wall_seconds=wall,
        )
        if self.health is not None:
            # Health windows share the batch's simulated-time edges, so
            # their deltas tile the session exactly (delta-consistency
            # is asserted against the collector at finalize time).
            self.health.observe_window(self._batch_index, start, until)
        self._batch_index += 1
        return batch

    def finalize(self) -> SimulationResult:
        """Freeze the session's cumulative metrics."""
        self._finalized = True
        return self.simulator.finalize_session()


class ServeOutcome(NamedTuple):
    """Product of one serve session: frozen result, per-batch deltas,
    and — when health monitoring was requested — the health report.

    ``health`` is None on unmonitored sessions; ``memory`` is empty
    unless the session's config enabled ``mem_profile`` (RSS/heap are
    process counters, so they stay outside the deterministic payload).
    Every field is picklable, so outcomes cross the worker-pool
    boundary unchanged.
    """

    result: SimulationResult
    batches: List[BatchResult]
    health: Optional[HealthReport]
    memory: Tuple[MemorySample, ...] = ()


#: One picklable serve task:
#: (trace, factory, workload, config, batches, rounds, slo_rules, monitor)
_ServeTask = Tuple[
    ContactTrace,
    Callable[[], CachingScheme],
    WorkloadConfig,
    SimulatorConfig,
    int,
    int,
    Tuple[SLORule, ...],
    bool,
]


def _serve_task(task: _ServeTask) -> ServeOutcome:
    """Worker entry point; module-level so it pickles under any start method.

    The worker builds its own :class:`HealthMonitor` (monitors hold a
    simulator reference and are not picklable; frozen SLO rules are) and
    ships back only the frozen :class:`HealthReport`.  Monitored
    sessions additionally prove the snapshot stream delta-consistent
    with the final collector totals before returning.
    """
    trace, scheme_factory, workload, config, batches, rounds, rules, monitor = task
    health = HealthMonitor(rules) if (monitor or rules) else None
    session = ServeSession(trace, scheme_factory(), workload, config, health=health)
    batch_results = [session.run_batch(rounds) for _ in range(batches)]
    totals = session.simulator.metrics.totals()
    memory = tuple(session.simulator.memory.samples)
    result = session.finalize()
    report: Optional[HealthReport] = None
    if health is not None:
        report = health.report()
        check_health_consistency(report, totals, baseline=health.baseline)
    return ServeOutcome(result, batch_results, report, memory)


def serve_repeated(
    trace: ContactTrace,
    scheme_factory: Callable[[], CachingScheme],
    workload: WorkloadConfig,
    seeds: Sequence[int],
    batches: int,
    rounds_per_batch: int = 1,
    config: Optional[SimulatorConfig] = None,
    workers: Optional[int] = None,
    slo_rules: Sequence[SLORule] = (),
    monitor_health: bool = False,
) -> List[ServeOutcome]:
    """Run one serve session per seed, optionally on a process pool.

    Outcomes are returned in seed order; each task carries its pinned
    seed, so ``workers > 1`` reproduces the serial results bit for bit
    on every deterministic field (wall-clock times naturally differ).
    Health snapshots and SLO verdicts derive only from simulated time
    and collector counters, so they are part of that bitwise payload.
    """
    base = config or SimulatorConfig(streaming_metrics=True)
    rules = tuple(slo_rules)
    tasks: List[_ServeTask] = [
        (
            trace,
            scheme_factory,
            workload,
            dataclasses.replace(base, seed=seed),
            batches,
            rounds_per_batch,
            rules,
            monitor_health,
        )
        for seed in seeds
    ]
    if not workers or workers <= 1 or len(tasks) <= 1:
        return [_serve_task(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(_serve_task, tasks))


def summarize_throughput(batches: Sequence[BatchResult]) -> dict:
    """Whole-session throughput rollup for reports and the CLI.

    Total-safe on degenerate input: an empty batch list, zero-duration
    batches, and batches that issued nothing all roll up without
    division errors (rates report 0.0 when the denominator is empty).
    """
    queries = sum(b.queries_issued for b in batches)
    satisfied = sum(b.queries_satisfied for b in batches)
    wall = sum(b.wall_seconds for b in batches)
    sim_seconds = sum(b.end - b.start for b in batches)
    return {
        "batches": len(batches),
        "queries_issued": queries,
        "queries_satisfied": satisfied,
        "success_ratio": (satisfied / queries) if queries > 0 else 0.0,
        "wall_seconds": wall,
        "sim_seconds": sim_seconds,
        "queries_per_second": (queries / wall) if wall > 0 and queries else 0.0,
        "queries_per_sim_second": (
            (queries / sim_seconds) if sim_seconds > 0 and queries else 0.0
        ),
    }
