"""Rendering of experiment results: ASCII tables, ASCII charts, CSV.

The paper presents its evaluation as figures; a terminal-first
reproduction renders the same series as aligned tables plus a compact
ASCII chart so trends are visible without plotting dependencies.
"""

from __future__ import annotations

import io
import math
from typing import Sequence

from repro.experiments.figures import FigureResult, Series, TableResult

__all__ = [
    "render_table",
    "render_figure",
    "render_ascii_chart",
    "render_markdown",
    "results_to_csv",
]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value and (abs(value) < 0.01 or abs(value) >= 10000):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: TableResult) -> str:
    """Aligned ASCII rendering of a :class:`TableResult`."""
    if not result.rows:
        return f"{result.title}\n(no rows)"
    columns = list(result.rows[0].keys())
    cells = [[_format_cell(row.get(col, "")) for col in columns] for row in result.rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    out = io.StringIO()
    out.write(f"{result.title}\n")
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in cells:
        out.write("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) + "\n")
    return out.getvalue()


def render_ascii_chart(
    series: Sequence[Series], width: int = 64, height: int = 16
) -> str:
    """A compact ASCII line chart of several series (marker per series)."""
    markers = "*o+x#@%&"
    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y if not math.isnan(y)]
    if not xs or not ys:
        return "(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in zip(s.x, s.y):
            if math.isnan(y):
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    out = io.StringIO()
    out.write(f"{y_hi:>10.3g} ┤" + "".join(grid[0]) + "\n")
    for line in grid[1:-1]:
        out.write(" " * 10 + " │" + "".join(line) + "\n")
    out.write(f"{y_lo:>10.3g} ┤" + "".join(grid[-1]) + "\n")
    out.write(" " * 12 + f"{x_lo:<.3g}".ljust(width // 2) + f"{x_hi:>.3g}".rjust(width // 2) + "\n")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {s.label}" for i, s in enumerate(series)
    )
    out.write(" " * 12 + legend + "\n")
    return out.getvalue()


def render_figure(result: FigureResult, chart: bool = True) -> str:
    """Render a figure as a value table plus an optional ASCII chart."""
    out = io.StringIO()
    out.write(f"{result.figure_id}: {result.title}\n")
    out.write(f"x = {result.x_label}; y = {result.y_label}\n")
    header = ["x"] + [s.label for s in result.series]
    widths = [max(10, len(h)) for h in header]
    out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)) + "\n")
    x_values = result.series[0].x if result.series else []
    for i, x in enumerate(x_values):
        row = [f"{x:.4g}"] + [
            _format_cell(s.y[i]) if i < len(s.y) else "" for s in result.series
        ]
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    if chart:
        out.write("\n" + render_ascii_chart(result.series) + "\n")
    return out.getvalue()


def results_to_csv(result: FigureResult) -> str:
    """CSV export: one row per x value, one column per series.

    Rows follow the *longest* series' x axis; shorter series leave their
    trailing cells empty rather than being truncated.
    """
    out = io.StringIO()
    out.write("x," + ",".join(s.label for s in result.series) + "\n")
    x_values = max((s.x for s in result.series), key=len, default=[])
    for i, x in enumerate(x_values):
        row = [f"{x}"] + [
            str(s.y[i]) if i < len(s.y) else "" for s in result.series
        ]
        out.write(",".join(row) + "\n")
    return out.getvalue()


def table_to_csv(result: TableResult) -> str:
    """CSV export of a table result."""
    if not result.rows:
        return ""
    columns = list(result.rows[0].keys())
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in result.rows:
        out.write(",".join(str(row.get(col, "")) for col in columns) + "\n")
    return out.getvalue()


def render_markdown(result: FigureResult, precision: int = 4) -> str:
    """GitHub-flavoured markdown table of a figure (for docs/reports)."""
    header = "| x | " + " | ".join(s.label for s in result.series) + " |"
    rule = "|" + "---|" * (len(result.series) + 1)
    lines = [f"**{result.figure_id}** — {result.title}", "", header, rule]
    x_values = result.series[0].x if result.series else []
    for i, x in enumerate(x_values):
        cells = [f"{x:.{precision}g}"]
        for s in result.series:
            value = s.y[i] if i < len(s.y) else float("nan")
            cells.append("nan" if math.isnan(value) else f"{value:.{precision}g}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def table_to_markdown(result: TableResult) -> str:
    """GitHub-flavoured markdown rendering of a table result."""
    if not result.rows:
        return f"**{result.table_id}** — {result.title}\n\n(no rows)\n"
    columns = list(result.rows[0].keys())
    lines = [
        f"**{result.table_id}** — {result.title}",
        "",
        "| " + " | ".join(columns) + " |",
        "|" + "---|" * len(columns),
    ]
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_format_cell(row.get(col, "")) for col in columns) + " |"
        )
    return "\n".join(lines) + "\n"
