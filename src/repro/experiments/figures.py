"""One entry point per table/figure of the paper's evaluation.

Every function takes an :class:`ExperimentScale` and returns a
structured result (:class:`TableResult` or :class:`FigureResult`) that
:mod:`repro.experiments.report` can render as ASCII or CSV.

Sweep axes that the paper expresses in absolute time (data lifetime up
to 3 months on a 246-day trace) are expressed here as fractions of the
scaled trace's evaluation window, so the *shape* of each curve — who
wins, how metrics trend along the axis, where they flatten — is
preserved at every scale.  Absolute parameter values are recorded in
each result's ``params``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.ncl import calibrate_time_budget, ncl_metrics
from repro.experiments.configs import (
    ExperimentScale,
    load_scaled_trace,
    replacement_factories,
    scheme_factories,
)
from repro.experiments.runner import run_comparison, run_repeated
from repro.graph.contact_graph import ContactGraph
from repro.mathutils.zipf import ZipfDistribution
from repro.metrics.results import AggregateResult
from repro.rng import SeedSequenceFactory
from repro.traces.catalog import TRACE_PRESETS
from repro.traces.stats import summarize_trace
from repro.units import HOUR, MEGABIT
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadProcess

__all__ = [
    "Series",
    "FigureResult",
    "TableResult",
    "table1",
    "fig4",
    "fig7",
    "fig9a",
    "fig9b",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ALL_EXPERIMENTS",
]


@dataclass(frozen=True)
class Series:
    """One labelled line of a figure."""

    label: str
    x: List[float]
    y: List[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x and y lengths differ")


@dataclass(frozen=True)
class FigureResult:
    """A reproduced figure: several series over a shared x-axis meaning."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series]
    params: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class TableResult:
    """A reproduced table."""

    table_id: str
    title: str
    rows: List[Dict[str, object]]
    params: Dict[str, object] = field(default_factory=dict)


# --- Table I -----------------------------------------------------------------


def table1(scale: ExperimentScale) -> TableResult:
    """Table I: summary statistics of the four (synthetic) traces."""
    rows = []
    for key in TRACE_PRESETS:
        trace = load_scaled_trace(key, scale)
        rows.append(summarize_trace(trace).as_row())
    return TableResult(
        table_id="table1",
        title="Trace summary (synthetic stand-ins for Table I)",
        rows=rows,
        params={"scale": scale.name},
    )


# --- Fig. 4: NCL metric skew ----------------------------------------------


def fig4(
    scale: ExperimentScale,
    traces: Optional[Sequence[str]] = None,
    adaptive_t: bool = True,
) -> FigureResult:
    """Fig. 4: the distribution of NCL selection metric values per trace.

    One series per trace: nodes sorted by descending Eq. (3) metric,
    x = node rank / N (so traces of different sizes share an axis).

    The paper chooses T "adaptively ... to ensure the differentiation of
    the NCL selection metric values" (Sec. IV-B); with ``adaptive_t``
    (default) the budget is calibrated per trace by
    :func:`repro.core.ncl.calibrate_time_budget`, otherwise each
    preset's published T is used verbatim.
    """
    series: List[Series] = []
    budgets: Dict[str, float] = {}
    for key in traces or list(TRACE_PRESETS):
        preset = TRACE_PRESETS[key]
        trace = load_scaled_trace(key, scale)
        graph = ContactGraph.from_trace(trace)
        if adaptive_t:
            budget = calibrate_time_budget(
                graph, sample_sources=min(40, graph.num_nodes)
            )
        else:
            budget = preset.ncl_time_budget
        budgets[key] = budget / HOUR
        metrics = np.sort(ncl_metrics(graph, budget))[::-1]
        # Resample onto a shared 100-point rank-percentile grid so traces
        # of different sizes align (and export to one rectangular CSV).
        grid = np.linspace(0.01, 1.0, 100)
        n = len(metrics)
        own_x = (np.arange(n) + 1) / n
        resampled = np.interp(grid, own_x, metrics)
        series.append(
            Series(
                label=key,
                x=[float(v) for v in grid],
                y=[float(v) for v in resampled],
            )
        )
    return FigureResult(
        figure_id="fig4",
        title="NCL selection metric distribution (Fig. 4)",
        x_label="node rank / N",
        y_label="metric C_i",
        series=series,
        params={"scale": scale.name, "adaptive_t": adaptive_t, "T_hours": budgets},
    )


# --- Fig. 9: experiment setup ------------------------------------------------


def _eval_window(scale: ExperimentScale, preset_key: str = "mit_reality") -> float:
    trace = load_scaled_trace(preset_key, scale)
    return trace.duration / 2.0


def fig9a(scale: ExperimentScale, lifetime_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.8)) -> FigureResult:
    """Fig. 9a: the amount of data in the network vs. data lifetime T_L.

    Runs the workload process standalone over the MIT-like evaluation
    window for each T_L and reports both total generated items and the
    time-averaged number of live items.
    """
    trace = load_scaled_trace("mit_reality", scale)
    eval_window = trace.duration / 2.0
    start = trace.duration / 2.0
    lifetimes = [f * eval_window for f in lifetime_fractions]
    generated: List[float] = []
    live: List[float] = []
    for lifetime in lifetimes:
        workload = WorkloadConfig(mean_data_lifetime=lifetime)
        factory = SeedSequenceFactory(scale.seeds[0])
        process = WorkloadProcess(workload, trace.num_nodes, factory.generator("workload"))
        own: Dict[int, float] = {}  # node -> expiry of its live item
        live_samples: List[int] = []
        t = start
        while t < start + eval_window:
            has_live = [own.get(node, 0.0) > t for node in range(trace.num_nodes)]
            for item in process.data_round(t, has_live):
                own[item.source] = item.expires_at
            live_samples.append(len(process.live_items(t)))
            t += workload.data_generation_period
        generated.append(float(process.data_items_generated))
        live.append(float(np.mean(live_samples)))
    x = [lifetime / HOUR for lifetime in lifetimes]
    return FigureResult(
        figure_id="fig9a",
        title="Generated data vs. data lifetime (Fig. 9a)",
        x_label="mean data lifetime T_L (hours)",
        y_label="data items",
        series=[
            Series(label="generated (total)", x=x, y=generated),
            Series(label="live (time average)", x=x, y=live),
        ],
        params={"scale": scale.name, "p_G": 0.2},
    )


def fig7(
    p_min: float = 0.45,
    p_max: float = 0.8,
    time_constraint: float = 10 * HOUR,
    num_points: int = 60,
) -> FigureResult:
    """Fig. 7: the probabilistic-response sigmoid p_R(t) (Eq. 4).

    The paper plots p_min = 0.45, p_max = 0.8, T_q = 10 hours.
    """
    from repro.mathutils.sigmoid import ResponseSigmoid

    sigmoid = ResponseSigmoid(p_min, p_max, time_constraint)
    xs = [time_constraint * i / (num_points - 1) for i in range(num_points)]
    return FigureResult(
        figure_id="fig7",
        title="Probability for deciding data response (Fig. 7)",
        x_label="elapsed query time t (hours)",
        y_label="p_R(t)",
        series=[
            Series(
                label=f"p_min={p_min:g}, p_max={p_max:g}",
                x=[t / HOUR for t in xs],
                y=[sigmoid(t) for t in xs],
            )
        ],
        params={"T_q_hours": time_constraint / HOUR},
    )


def fig9b(num_items: int = 50, exponents: Sequence[float] = (0.5, 1.0, 1.5)) -> FigureResult:
    """Fig. 9b: the Zipf query pmf P_j for several exponents (Eq. 8)."""
    series = []
    for s in exponents:
        pmf = ZipfDistribution(num_items, s).pmf_vector()
        series.append(
            Series(
                label=f"s={s:g}",
                x=[float(j) for j in range(1, num_items + 1)],
                y=[float(p) for p in pmf],
            )
        )
    return FigureResult(
        figure_id="fig9b",
        title="Zipf query distribution (Fig. 9b)",
        x_label="data rank j",
        y_label="P_j",
        series=series,
        params={"num_items": num_items},
    )


# --- shared sweep machinery for Figs. 10-13 ------------------------------


_METRIC_AXES = (
    ("successful_ratio", "successful ratio"),
    ("mean_access_delay_hours", "data access delay (hours)"),
    ("caching_overhead", "cached copies per item"),
)


def _axis_value(result: AggregateResult, metric: str) -> float:
    if metric == "mean_access_delay_hours":
        return result.mean_access_delay / HOUR
    return float(getattr(result, metric))


def _sweep_figures(
    figure_id: str,
    title: str,
    x_label: str,
    x_values: Sequence[float],
    results: Dict[str, List[AggregateResult]],
    params: Dict[str, object],
) -> Dict[str, FigureResult]:
    """Build the (a) ratio, (b) delay, (c) overhead sub-figures."""
    figures: Dict[str, FigureResult] = {}
    for suffix, (metric, y_label) in zip(("a", "b", "c"), _METRIC_AXES):
        series = [
            Series(
                label=name,
                x=list(x_values),
                y=[_axis_value(r, metric) for r in sweep],
            )
            for name, sweep in results.items()
        ]
        figures[suffix] = FigureResult(
            figure_id=f"{figure_id}{suffix}",
            title=f"{title} — {y_label}",
            x_label=x_label,
            y_label=y_label,
            series=series,
            params=dict(params),
        )
    return figures


def fig10(
    scale: ExperimentScale,
    lifetime_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.8),
) -> Dict[str, FigureResult]:
    """Fig. 10: performance vs. data lifetime T_L on the MIT-like trace.

    Five schemes, K = 8, s_avg = 100 Mb; T_L swept as fractions of the
    evaluation window (12 h → 3 months in the paper).
    """
    preset = TRACE_PRESETS["mit_reality"]
    trace = load_scaled_trace("mit_reality", scale)
    eval_window = trace.duration / 2.0
    factories = scheme_factories(
        num_ncls=preset.default_num_ncls, ncl_time_budget=preset.ncl_time_budget
    )
    results: Dict[str, List[AggregateResult]] = {name: [] for name in factories}
    lifetimes = [f * eval_window for f in lifetime_fractions]
    for lifetime in lifetimes:
        workload = WorkloadConfig(mean_data_lifetime=lifetime, mean_data_size=100 * MEGABIT)
        comparison = run_comparison(trace, factories, workload, scale.seeds)
        for name, agg in comparison.items():
            results[name].append(agg)
    return _sweep_figures(
        "fig10",
        "Performance vs. data lifetime (Fig. 10)",
        "data lifetime T_L (hours)",
        [lifetime / HOUR for lifetime in lifetimes],
        results,
        {"scale": scale.name, "trace": "mit_reality", "K": preset.default_num_ncls},
    )


def fig11(
    scale: ExperimentScale,
    sizes_mb: Sequence[float] = (20, 60, 100, 150, 200),
    lifetime_fraction: float = 0.2,
) -> Dict[str, FigureResult]:
    """Fig. 11: performance vs. average data size s_avg (node buffer
    conditions) on the MIT-like trace.  T_L = 1 week in the paper."""
    preset = TRACE_PRESETS["mit_reality"]
    trace = load_scaled_trace("mit_reality", scale)
    lifetime = lifetime_fraction * trace.duration / 2.0
    factories = scheme_factories(
        num_ncls=preset.default_num_ncls, ncl_time_budget=preset.ncl_time_budget
    )
    results: Dict[str, List[AggregateResult]] = {name: [] for name in factories}
    for size_mb in sizes_mb:
        workload = WorkloadConfig(
            mean_data_lifetime=lifetime, mean_data_size=int(size_mb * MEGABIT)
        )
        comparison = run_comparison(trace, factories, workload, scale.seeds)
        for name, agg in comparison.items():
            results[name].append(agg)
    return _sweep_figures(
        "fig11",
        "Performance vs. average data size (Fig. 11)",
        "average data size s_avg (Mb)",
        list(sizes_mb),
        results,
        {"scale": scale.name, "trace": "mit_reality", "K": preset.default_num_ncls},
    )


def fig12(
    scale: ExperimentScale,
    sizes_mb: Sequence[float] = (20, 60, 100, 150, 200),
    lifetime_fraction: float = 0.2,
) -> Dict[str, FigureResult]:
    """Fig. 12: cache-replacement strategies inside the intentional scheme
    (ours vs FIFO / LRU / Greedy-Dual-Size) vs. average data size.

    Sub-figure (c) reports replacement overhead (items replaced per
    generated data item) instead of cached copies.
    """
    preset = TRACE_PRESETS["mit_reality"]
    trace = load_scaled_trace("mit_reality", scale)
    lifetime = lifetime_fraction * trace.duration / 2.0
    results: Dict[str, List[AggregateResult]] = {}
    for policy_name, policy_factory in replacement_factories().items():
        sweep: List[AggregateResult] = []
        for size_mb in sizes_mb:
            workload = WorkloadConfig(
                mean_data_lifetime=lifetime, mean_data_size=int(size_mb * MEGABIT)
            )
            factory = scheme_factories(
                num_ncls=preset.default_num_ncls,
                ncl_time_budget=preset.ncl_time_budget,
                replacement=policy_factory,
            )["intentional"]
            sweep.append(run_repeated(trace, factory, workload, scale.seeds))
        results[policy_name] = sweep
    figures = _sweep_figures(
        "fig12",
        "Cache replacement strategies (Fig. 12)",
        "average data size s_avg (Mb)",
        list(sizes_mb),
        results,
        {"scale": scale.name, "trace": "mit_reality"},
    )
    figures["c"] = FigureResult(
        figure_id="fig12c",
        title="Cache replacement strategies (Fig. 12) — replacement overhead",
        x_label="average data size s_avg (Mb)",
        y_label="items replaced per generated item",
        series=[
            Series(
                label=name,
                x=list(sizes_mb),
                y=[r.replacement_overhead for r in sweep],
            )
            for name, sweep in results.items()
        ],
        params={"scale": scale.name, "trace": "mit_reality"},
    )
    return figures


def fig13(
    scale: ExperimentScale,
    ncl_counts: Sequence[int] = (1, 2, 3, 5, 8, 10),
    sizes_mb: Sequence[float] = (50, 100, 200),
    lifetime_fraction: float = 0.1,
) -> Dict[str, FigureResult]:
    """Fig. 13: impact of the number of NCLs (K) on the Infocom06-like
    trace, one curve per buffer condition (s_avg).  T_L = 3 h in the
    paper."""
    preset = TRACE_PRESETS["infocom06"]
    trace = load_scaled_trace("infocom06", scale)
    lifetime = lifetime_fraction * trace.duration / 2.0
    results: Dict[str, List[AggregateResult]] = {}
    for size_mb in sizes_mb:
        workload = WorkloadConfig(
            mean_data_lifetime=lifetime, mean_data_size=int(size_mb * MEGABIT)
        )
        sweep: List[AggregateResult] = []
        for k in ncl_counts:
            factory = scheme_factories(
                num_ncls=k, ncl_time_budget=preset.ncl_time_budget
            )["intentional"]
            sweep.append(run_repeated(trace, factory, workload, scale.seeds))
        results[f"s_avg={size_mb:g}Mb"] = sweep
    return _sweep_figures(
        "fig13",
        "Impact of the number of NCLs (Fig. 13)",
        "number of NCLs K",
        [float(k) for k in ncl_counts],
        results,
        {"scale": scale.name, "trace": "infocom06"},
    )


#: registry used by the paper-experiments example and the benchmarks
ALL_EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1,
    "fig4": fig4,
    "fig7": fig7,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}
