"""Kernel-benchmark regression guard (``python -m repro bench``).

Runs the microbenchmarks in ``benchmarks/test_bench_kernels.py`` through
pytest-benchmark with ``--benchmark-json``, then compares each kernel's
mean time against the committed baseline and fails when any kernel
regresses beyond the threshold (default 1.5×).

The committed baseline (``benchmarks/kernels_baseline.json``) carries a
``benchmarks`` map of ``{benchmark name: mean seconds}`` plus a
provenance manifest recording where those numbers came from (git
revision, package versions, platform) — machine-dependent, so regenerate
it with ``--update-baseline`` when the hardware or an intentional
performance trade-off changes.  New benchmarks without a baseline entry
are reported but never fail the guard.

Benchmarks named ``<kernel>_profiled`` are additionally paired with
their unprofiled ``<kernel>`` twin *within the same run*: the guard
fails when enabling the profiler costs more than
``PROFILER_OVERHEAD_THRESHOLD`` (5%), keeping span instrumentation
cheap enough to leave on during investigations.  The same twin pairing
applies to ``<name>_reelect`` benchmarks: enabling NCL re-election on a
*static* network must stay within ``REELECT_OVERHEAD_THRESHOLD`` (5%)
of the plain run — re-election is gated on topology changes, so a run
without churn pays essentially nothing for it.  ``<name>_diagnose``
twins bound the post-processing cost of ``repro diagnose`` on a traced
run: the full causal reconstruction + consistency cross-check +
fidelity assessment may add at most ``DIAGNOSE_OVERHEAD_THRESHOLD``
(50%) on top of the traced simulation itself.  ``<name>_health`` twins
bound the live health monitor: a serve run with per-batch
``HealthMonitor.observe_window`` snapshots + SLO evaluation + anomaly
detectors may cost at most ``HEALTH_OVERHEAD_THRESHOLD`` (5%) over the
unmonitored serve run — health telemetry is meant to be always-on in
serve mode, so its price must stay in the noise.

Kernel benchmarks are parameterized by kernel backend and show up as
``<name>[python]`` / ``<name>[numba]`` (the latter only when numba is
installed).  Twin pairing and baseline lookup are bracket-aware — a
suffixed twin pairs with its same-backend plain twin, and a
parameterized name falls back to the bare baseline entry so baselines
recorded before the backend split stay readable.  When both backends
ran, the guard prints a compiled-vs-python speedup table (informational;
the ≥3x floor is asserted inside the benchmark suite).  The baseline's
provenance manifest records the active kernel backend.

Benchmarks that publish ``benchmark.extra_info["queries"]`` (the
heavy-traffic workload benchmarks) additionally form a **throughput
tier**: the guard derives queries/sec from the deterministic per-round
query count and the measured mean, records it under the baseline's
``throughput`` map, and fails when a run's q/s drops below
``baseline / threshold`` — the reciprocal of the mean-time rule,
stated in the unit the heavy-traffic engine is specced in.

Benchmarks that publish ``benchmark.extra_info["peak_rss_mb"]`` (and
optionally ``extra_info["mem_subsystems"]``, the per-subsystem byte
attribution of :meth:`repro.sim.simulator.Simulator.memory_breakdown`)
form a **memory tier**: peak RSS and the attribution are stamped into
the baseline's ``memory`` map, and the guard fails when a run's
footprint exceeds ``MEMORY_FOOTPRINT_THRESHOLD`` (1.2×) its baseline —
time regressions and footprint regressions are caught by the same
gate.  ``<name>_memory`` twins bound the *cost of measuring*: a run
with ``mem_profile`` sampling on may cost at most
``MEMORY_OVERHEAD_THRESHOLD`` (5%) over its unprofiled twin.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.provenance import build_manifest

__all__ = [
    "load_benchmark_means",
    "load_benchmark_queries",
    "load_benchmark_memory",
    "compare_against_baseline",
    "check_twin_overhead",
    "check_profiler_overhead",
    "check_reelection_overhead",
    "check_diagnose_overhead",
    "check_health_overhead",
    "check_memory_overhead",
    "check_memory_footprint",
    "check_backend_speedups",
    "check_throughput",
    "run_guard",
    "main",
]

DEFAULT_BENCHMARK_FILE = Path("benchmarks/test_bench_kernels.py")
DEFAULT_RESULT_JSON = Path("BENCH_kernels.json")
DEFAULT_BASELINE = Path("benchmarks/kernels_baseline.json")
DEFAULT_THRESHOLD = 1.5

#: ``<kernel>_profiled`` may cost at most 5% over its unprofiled twin.
PROFILED_SUFFIX = "_profiled"
PROFILER_OVERHEAD_THRESHOLD = 1.05

#: ``<name>_reelect`` (re-election enabled, static network) may cost at
#: most 5% over its plain twin — re-election is topology-gated.
REELECT_SUFFIX = "_reelect"
REELECT_OVERHEAD_THRESHOLD = 1.05

#: ``<name>_diagnose`` (traced run + full diagnosis) may cost at most
#: 50% over the traced run alone — diagnosis is offline post-processing,
#: but it must stay cheap enough to run after every traced simulation.
DIAGNOSE_SUFFIX = "_diagnose"
DIAGNOSE_OVERHEAD_THRESHOLD = 1.5

#: ``<name>_health`` (serve run with the live health monitor attached)
#: may cost at most 5% over its unmonitored twin — O(1) windowed deltas
#: keep always-on telemetry in the noise.
HEALTH_SUFFIX = "_health"
HEALTH_OVERHEAD_THRESHOLD = 1.05

#: ``<name>_memory`` (mem-profile sampling enabled) may cost at most 5%
#: over its unprofiled twin — footprint observability must be cheap
#: enough to leave on whenever a run is suspected of bloating.
MEMORY_SUFFIX = "_memory"
MEMORY_OVERHEAD_THRESHOLD = 1.05

#: a benchmark's peak RSS may grow to at most 1.2x its baseline —
#: footprint regressions gate exactly like time regressions, just with
#: a tighter multiplier (RSS is far less noisy than wall-clock).
MEMORY_FOOTPRINT_THRESHOLD = 1.2

#: a throughput benchmark may drop to at most baseline/threshold q/s —
#: the reciprocal of the mean-time regression rule, stated in the unit
#: the heavy-traffic engine is specced in.
THROUGHPUT_THRESHOLD = DEFAULT_THRESHOLD


def load_benchmark_means(result_json: Path) -> Dict[str, float]:
    """Extract ``{benchmark name: mean seconds}`` from pytest-benchmark JSON."""
    payload = json.loads(Path(result_json).read_text())
    return {
        entry["name"]: float(entry["stats"]["mean"])
        for entry in payload.get("benchmarks", [])
    }


def load_benchmark_queries(result_json: Path) -> Dict[str, int]:
    """``{benchmark name: queries processed per round}`` from the report.

    Throughput benchmarks publish their deterministic per-round query
    count through ``benchmark.extra_info["queries"]``; benchmarks
    without it are not throughput benchmarks.
    """
    payload = json.loads(Path(result_json).read_text())
    queries = {}
    for entry in payload.get("benchmarks", []):
        count = entry.get("extra_info", {}).get("queries")
        if count:
            queries[entry["name"]] = int(count)
    return queries


def load_benchmark_memory(result_json: Path) -> Dict[str, Dict[str, object]]:
    """``{benchmark name: {"peak_rss_mb": .., "subsystems": {..}}}``.

    Memory-tier benchmarks publish their peak RSS (MB, via
    :func:`repro.obs.memory.peak_rss_bytes`) through
    ``benchmark.extra_info["peak_rss_mb"]`` and optionally the
    per-subsystem byte attribution through
    ``extra_info["mem_subsystems"]``; benchmarks without the RSS stamp
    are not memory benchmarks.
    """
    payload = json.loads(Path(result_json).read_text())
    memory: Dict[str, Dict[str, object]] = {}
    for entry in payload.get("benchmarks", []):
        extra = entry.get("extra_info", {})
        peak = extra.get("peak_rss_mb")
        if peak:
            record: Dict[str, object] = {"peak_rss_mb": float(peak)}
            subsystems = extra.get("mem_subsystems")
            if subsystems:
                record["subsystems"] = {
                    str(k): int(v) for k, v in subsystems.items()
                }
            memory[entry["name"]] = record
    return memory


def _split_param(name: str) -> Tuple[str, str]:
    """``"test_x[numba]"`` → ``("test_x", "numba")``; no param → ``""``.

    pytest-benchmark appends fixture parameters in brackets; twin and
    backend pairing must operate on the base name while preserving the
    parameter.
    """
    if name.endswith("]") and "[" in name:
        base, _, param = name[:-1].partition("[")
        return base, param
    return name, ""


def compare_against_baseline(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Tuple[str, float, Optional[float], bool]]:
    """Per-benchmark ``(name, mean, baseline mean, regressed)`` rows.

    A benchmark regresses when its mean exceeds ``threshold ×`` its
    baseline mean; benchmarks missing from the baseline never regress.
    """
    rows = []
    for name in sorted(current):
        mean = current[name]
        reference = baseline.get(name)
        if reference is None:
            # Baselines recorded before benchmarks grew a [backend]
            # parameter carry bare names; fall back to the base name so
            # old baselines keep guarding parameterized runs.
            reference = baseline.get(_split_param(name)[0])
        regressed = reference is not None and mean > threshold * reference
        rows.append((name, mean, reference, regressed))
    return rows


def check_twin_overhead(
    current: Dict[str, float],
    suffix: str,
    threshold: float,
) -> List[Tuple[str, float, bool]]:
    """Pair each ``<name><suffix>`` benchmark with its plain twin.

    Both means come from the *same run*, so the comparison is free of
    baseline/machine drift.  Each row is ``(suffixed name, overhead
    ratio, failed)``; a missing or zero-time twin yields no row.
    """
    rows = []
    for name in sorted(current):
        base, param = _split_param(name)
        if not base.endswith(suffix):
            continue
        twin_name = base[: -len(suffix)] + (f"[{param}]" if param else "")
        twin = current.get(twin_name)
        if not twin:
            continue
        ratio = current[name] / twin
        rows.append((name, ratio, ratio > threshold))
    return rows


def check_profiler_overhead(
    current: Dict[str, float],
    threshold: float = PROFILER_OVERHEAD_THRESHOLD,
) -> List[Tuple[str, float, bool]]:
    """``<kernel>_profiled`` vs its unprofiled twin (span overhead)."""
    return check_twin_overhead(current, PROFILED_SUFFIX, threshold)


def check_reelection_overhead(
    current: Dict[str, float],
    threshold: float = REELECT_OVERHEAD_THRESHOLD,
) -> List[Tuple[str, float, bool]]:
    """``<name>_reelect`` vs its static twin (topology-gated cost)."""
    return check_twin_overhead(current, REELECT_SUFFIX, threshold)


def check_diagnose_overhead(
    current: Dict[str, float],
    threshold: float = DIAGNOSE_OVERHEAD_THRESHOLD,
) -> List[Tuple[str, float, bool]]:
    """``<name>_diagnose`` vs its trace-only twin (diagnosis cost)."""
    return check_twin_overhead(current, DIAGNOSE_SUFFIX, threshold)


def check_health_overhead(
    current: Dict[str, float],
    threshold: float = HEALTH_OVERHEAD_THRESHOLD,
) -> List[Tuple[str, float, bool]]:
    """``<name>_health`` vs its unmonitored twin (live telemetry cost)."""
    return check_twin_overhead(current, HEALTH_SUFFIX, threshold)


def check_memory_overhead(
    current: Dict[str, float],
    threshold: float = MEMORY_OVERHEAD_THRESHOLD,
) -> List[Tuple[str, float, bool]]:
    """``<name>_memory`` vs its unprofiled twin (sampling cost)."""
    return check_twin_overhead(current, MEMORY_SUFFIX, threshold)


def check_memory_footprint(
    current: Dict[str, Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
    threshold: float = MEMORY_FOOTPRINT_THRESHOLD,
) -> List[Tuple[str, float, Optional[float], bool]]:
    """Per-benchmark ``(name, peak MB, baseline MB, regressed)`` rows.

    A benchmark regresses when its peak RSS exceeds ``threshold ×`` its
    baseline peak; benchmarks without a baseline entry never regress
    (they are NEW).  Peak RSS is a process-wide high-water mark, so
    within one pytest process later benchmarks inherit earlier peaks —
    footprint baselines are only meaningful for the run order the
    benchmark file fixes, which is why the stamp lives in the benches
    themselves rather than in a post-hoc probe.
    """
    rows = []
    for name in sorted(current):
        peak = float(current[name]["peak_rss_mb"])  # type: ignore[arg-type]
        entry = baseline.get(name) or baseline.get(_split_param(name)[0])
        reference = float(entry["peak_rss_mb"]) if entry else None  # type: ignore[index]
        regressed = reference is not None and peak > threshold * reference
        rows.append((name, peak, reference, regressed))
    return rows


def check_backend_speedups(
    current: Dict[str, float],
) -> List[Tuple[str, float, float, float]]:
    """Pair ``<name>[numba]`` with ``<name>[python]`` from the same run.

    Returns ``(base name, python mean, numba mean, speedup)`` rows for
    every benchmark that ran on both backends; purely informational —
    the ≥3x floor is asserted by the benchmark suite itself (and only
    when numba is installed).
    """
    by_base: Dict[str, Dict[str, float]] = {}
    for name, mean in current.items():
        base, param = _split_param(name)
        if param in ("python", "numba"):
            by_base.setdefault(base, {})[param] = mean
    rows = []
    for base in sorted(by_base):
        means = by_base[base]
        if "python" in means and "numba" in means and means["numba"] > 0:
            rows.append(
                (base, means["python"], means["numba"], means["python"] / means["numba"])
            )
    return rows


def check_throughput(
    means: Dict[str, float],
    queries: Dict[str, int],
    baseline_qps: Dict[str, float],
    threshold: float = THROUGHPUT_THRESHOLD,
) -> List[Tuple[str, float, Optional[float], bool]]:
    """Per-benchmark ``(name, q/s, baseline q/s, regressed)`` rows.

    A throughput benchmark regresses when its queries/sec falls below
    ``baseline / threshold``; benchmarks without a baseline entry never
    regress (they are NEW).
    """
    rows = []
    for name in sorted(queries):
        mean = means.get(name)
        if not mean:
            continue
        qps = queries[name] / mean
        reference = baseline_qps.get(name)
        regressed = reference is not None and qps < reference / threshold
        rows.append((name, qps, reference, regressed))
    return rows


def _run_benchmarks(benchmark_file: Path, result_json: Path) -> int:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    paths = env.get("PYTHONPATH", "")
    if src not in paths.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + paths if paths else "")
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(benchmark_file),
        "-q",
        "-p",
        "no:cacheprovider",
        f"--benchmark-json={result_json}",
    ]
    return subprocess.call(command, env=env)


def run_guard(
    benchmark_file: Path = DEFAULT_BENCHMARK_FILE,
    result_json: Path = DEFAULT_RESULT_JSON,
    baseline_path: Path = DEFAULT_BASELINE,
    threshold: float = DEFAULT_THRESHOLD,
    update_baseline: bool = False,
) -> int:
    """Run the kernel benchmarks and enforce the regression threshold."""
    status = _run_benchmarks(benchmark_file, result_json)
    if status != 0:
        print("benchmark run failed", file=sys.stderr)
        return status
    current = load_benchmark_means(result_json)
    query_counts = load_benchmark_queries(result_json)
    current_memory = load_benchmark_memory(result_json)
    current_qps = {
        name: query_counts[name] / current[name]
        for name in query_counts
        if current.get(name)
    }
    if update_baseline:
        # The manifest pins where these numbers came from (git revision,
        # package versions, platform) — baselines are machine-dependent.
        # The sparsity knobs are stamped too: a baseline measured with a
        # different auto-sparse threshold or truncation depth is not
        # comparable to the current tree's numbers.
        from repro.core.ncl import DEFAULT_KNN_K
        from repro.graph.contact_graph import DENSE_NODE_THRESHOLD

        manifest = build_manifest(
            {
                "benchmark_file": str(benchmark_file),
                "threshold": threshold,
                "sparsity": {
                    "dense_node_threshold": DENSE_NODE_THRESHOLD,
                    "default_knn_k": DEFAULT_KNN_K,
                },
            },
            [],
        )
        payload = {
            "benchmarks": current,
            "throughput": current_qps,
            "memory": current_memory,
            "provenance": manifest,
        }
        baseline_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(
            f"baseline updated: {baseline_path} ({len(current)} kernels, "
            f"{len(current_qps)} throughput, {len(current_memory)} memory)"
        )
        return 0
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; run with --update-baseline first",
            file=sys.stderr,
        )
        return 2
    payload = json.loads(baseline_path.read_text())
    # Pre-provenance baselines were a bare {name: mean} map.
    baseline = payload.get("benchmarks", payload)
    failures = 0
    for name, mean, reference, regressed in compare_against_baseline(
        current, baseline, threshold
    ):
        if reference is None:
            verdict, detail = "NEW", "no baseline entry"
        else:
            ratio = mean / reference if reference > 0 else float("inf")
            verdict = "FAIL" if regressed else "ok"
            detail = f"baseline {reference * 1e3:8.3f} ms  ratio {ratio:5.2f}x"
            failures += int(regressed)
        print(f"{verdict:4s} {name:45s} {mean * 1e3:8.3f} ms  {detail}")
    overhead_failures = 0
    pairings = [
        ("profiler", check_profiler_overhead(current), PROFILER_OVERHEAD_THRESHOLD),
        ("re-election", check_reelection_overhead(current), REELECT_OVERHEAD_THRESHOLD),
        ("diagnose", check_diagnose_overhead(current), DIAGNOSE_OVERHEAD_THRESHOLD),
        ("health", check_health_overhead(current), HEALTH_OVERHEAD_THRESHOLD),
        ("memory", check_memory_overhead(current), MEMORY_OVERHEAD_THRESHOLD),
    ]
    for label, rows, limit in pairings:
        for name, ratio, failed in rows:
            verdict = "FAIL" if failed else "ok"
            print(
                f"{verdict:4s} {name:45s} {label} overhead {ratio:5.2f}x "
                f"(limit {limit:.2f}x)"
            )
            overhead_failures += int(failed)
    throughput_failures = 0
    throughput_rows = check_throughput(
        current, query_counts, payload.get("throughput", {}), threshold
    )
    if throughput_rows:
        print("\nthroughput (queries/sec, floor = baseline / threshold):")
        for name, qps, reference, regressed in throughput_rows:
            if reference is None:
                verdict, detail = "NEW", "no baseline entry"
            else:
                verdict = "FAIL" if regressed else "ok"
                detail = f"baseline {reference:10.0f} q/s  ratio {qps / reference:5.2f}x"
                throughput_failures += int(regressed)
            print(f"{verdict:4s} {name:45s} {qps:10.0f} q/s  {detail}")
    memory_failures = 0
    memory_rows = check_memory_footprint(
        current_memory, payload.get("memory", {}), MEMORY_FOOTPRINT_THRESHOLD
    )
    if memory_rows:
        print(
            "\nmemory footprint (peak RSS, ceiling = "
            f"{MEMORY_FOOTPRINT_THRESHOLD:.2f}x baseline):"
        )
        for name, peak, reference, regressed in memory_rows:
            if reference is None:
                verdict, detail = "NEW", "no baseline entry"
            else:
                verdict = "FAIL" if regressed else "ok"
                detail = f"baseline {reference:10.1f} MB  ratio {peak / reference:5.2f}x"
                memory_failures += int(regressed)
            print(f"{verdict:4s} {name:45s} {peak:10.1f} MB  {detail}")
    speedups = check_backend_speedups(current)
    if speedups:
        print("\ncompiled-kernel speedups (numba vs python, same run):")
        for base, python_mean, numba_mean, speedup in speedups:
            print(
                f"     {base:45s} python {python_mean * 1e3:8.3f} ms  "
                f"numba {numba_mean * 1e3:8.3f} ms  speedup {speedup:5.2f}x"
            )
    if failures:
        print(
            f"{failures} kernel(s) regressed beyond {threshold:.2f}x baseline",
            file=sys.stderr,
        )
        return 1
    if overhead_failures:
        print(
            f"{overhead_failures} benchmark(s) exceed their twin overhead limit",
            file=sys.stderr,
        )
        return 1
    if throughput_failures:
        print(
            f"{throughput_failures} benchmark(s) fell below baseline/"
            f"{threshold:.2f} queries/sec",
            file=sys.stderr,
        )
        return 1
    if memory_failures:
        print(
            f"{memory_failures} benchmark(s) exceeded "
            f"{MEMORY_FOOTPRINT_THRESHOLD:.2f}x their baseline peak RSS",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(current)} kernels within {threshold:.2f}x of baseline")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro bench", description=__doc__)
    parser.add_argument(
        "--benchmark-file", type=Path, default=DEFAULT_BENCHMARK_FILE,
        help="pytest file holding the kernel benchmarks",
    )
    parser.add_argument(
        "--json", type=Path, default=DEFAULT_RESULT_JSON,
        help="where to write the pytest-benchmark JSON report",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed slim baseline ({name: mean seconds})",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fail when a kernel's mean exceeds threshold x baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    args = parser.parse_args(argv)
    return run_guard(
        benchmark_file=args.benchmark_file,
        result_json=args.json,
        baseline_path=args.baseline,
        threshold=args.threshold,
        update_baseline=args.update_baseline,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via scripts/
    sys.exit(main())
