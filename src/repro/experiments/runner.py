"""Seeded execution helpers for the experiment harness."""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.caching.base import CachingScheme
from repro.metrics.results import AggregateResult, SimulationResult, aggregate_results
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.contact import ContactTrace
from repro.workload.config import WorkloadConfig

__all__ = ["run_single", "run_repeated", "run_comparison"]


def run_single(
    trace: ContactTrace,
    scheme: CachingScheme,
    workload: WorkloadConfig,
    seed: int = 0,
) -> SimulationResult:
    """One seeded simulation run."""
    return Simulator(trace, scheme, workload, SimulatorConfig(seed=seed)).run()


def run_repeated(
    trace: ContactTrace,
    scheme_factory: Callable[[], CachingScheme],
    workload: WorkloadConfig,
    seeds: Sequence[int],
) -> AggregateResult:
    """The paper's repetition protocol: same trace and scheme, several
    seeds for data/query randomness, aggregated with CIs."""
    results = [
        run_single(trace, scheme_factory(), workload, seed=seed) for seed in seeds
    ]
    return aggregate_results(results)


def run_comparison(
    trace: ContactTrace,
    factories: Dict[str, Callable[[], CachingScheme]],
    workload: WorkloadConfig,
    seeds: Sequence[int],
) -> Dict[str, AggregateResult]:
    """All schemes on an identical trace + workload (paired comparison)."""
    return {
        name: run_repeated(trace, factory, workload, seeds)
        for name, factory in factories.items()
    }
