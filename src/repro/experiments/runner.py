"""Seeded execution helpers for the experiment harness.

Repetition over seeds — and the cross-scheme comparisons built on it —
is embarrassingly parallel: each task is a pure function of
``(trace, scheme_factory, workload, seed)``.  ``run_repeated`` and
``run_comparison`` accept a ``workers=`` argument that fans the tasks out
over a :class:`~concurrent.futures.ProcessPoolExecutor`; the default
stays strictly serial so determinism-sensitive tests and tiny sweeps pay
no pool overhead.

Parallel execution is bit-identical to serial execution: every run draws
only from seed-derived streams, results are collected in seed order, and
aggregation is order-stable.  The only requirement is picklability —
pass a module-level class or :func:`functools.partial` as the factory,
not a lambda or closure.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.caching.base import CachingScheme
from repro.metrics.results import AggregateResult, SimulationResult, aggregate_results
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.contact import ContactTrace
from repro.workload.config import WorkloadConfig

__all__ = ["run_single", "run_repeated", "run_comparison"]

#: One picklable unit of work for the process pool.
_Task = Tuple[ContactTrace, Callable[[], CachingScheme], WorkloadConfig, int]


def run_single(
    trace: ContactTrace,
    scheme: CachingScheme,
    workload: WorkloadConfig,
    seed: int = 0,
) -> SimulationResult:
    """One seeded simulation run."""
    return Simulator(trace, scheme, workload, SimulatorConfig(seed=seed)).run()


def _execute_task(task: _Task) -> SimulationResult:
    """Worker entry point; module-level so it pickles under any start method."""
    trace, scheme_factory, workload, seed = task
    return run_single(trace, scheme_factory(), workload, seed=seed)


def _execute_all(tasks: Sequence[_Task], workers: Optional[int]) -> List[SimulationResult]:
    """Run tasks serially or on a process pool, preserving input order.

    ``workers`` of ``None``/``0``/``1`` means serial — the default, so
    the pool (and its pickling constraints) is strictly opt-in.
    """
    if not workers or workers <= 1 or len(tasks) <= 1:
        return [_execute_task(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        # Executor.map preserves submission order, which is seed order;
        # aggregation is therefore bitwise-identical to the serial path.
        return list(pool.map(_execute_task, tasks))


def run_repeated(
    trace: ContactTrace,
    scheme_factory: Callable[[], CachingScheme],
    workload: WorkloadConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
) -> AggregateResult:
    """The paper's repetition protocol: same trace and scheme, several
    seeds for data/query randomness, aggregated with CIs.

    With ``workers > 1`` the seeds run on a process pool; results are
    aggregated in seed order either way, so the aggregate is identical.
    """
    tasks: List[_Task] = [(trace, scheme_factory, workload, seed) for seed in seeds]
    return aggregate_results(_execute_all(tasks, workers))


def run_comparison(
    trace: ContactTrace,
    factories: Dict[str, Callable[[], CachingScheme]],
    workload: WorkloadConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
) -> Dict[str, AggregateResult]:
    """All schemes on an identical trace + workload (paired comparison).

    With ``workers > 1`` the full (scheme × seed) grid is flattened into
    one task list so the pool stays busy across scheme boundaries.
    """
    names = list(factories)
    tasks: List[_Task] = [
        (trace, factories[name], workload, seed) for name in names for seed in seeds
    ]
    results = _execute_all(tasks, workers)
    per_scheme: Dict[str, List[SimulationResult]] = {name: [] for name in names}
    for (name, _seed), result in zip(
        ((name, seed) for name in names for seed in seeds), results
    ):
        per_scheme[name].append(result)
    return {name: aggregate_results(per_scheme[name]) for name in names}
