"""Seeded execution helpers for the experiment harness.

Repetition over seeds — and the cross-scheme comparisons built on it —
is embarrassingly parallel: each task is a pure function of
``(trace, scheme_factory, workload, seed)``.  ``run_repeated`` and
``run_comparison`` accept a ``workers=`` argument that fans the tasks out
over a :class:`~concurrent.futures.ProcessPoolExecutor`; the default
stays strictly serial so determinism-sensitive tests and tiny sweeps pay
no pool overhead.

Parallel execution is bit-identical to serial execution: every run draws
only from seed-derived streams, results are collected in seed order, and
aggregation is order-stable.  The only requirement is picklability —
pass a module-level class or :func:`functools.partial` as the factory,
not a lambda or closure.

Fault tolerance: a crashed worker (OOM-killed child, segfaulting native
extension) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`.
The seed→run mapping is **pinned at task construction** — each task tuple
carries its own seed — so retrying the unfinished tasks on a fresh pool
(in whatever worker order) reproduces exactly the results the original
pool would have produced.  Deterministic task exceptions are *not*
retried; they propagate immediately.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.caching.base import CachingScheme
from repro.errors import SimulationError
from repro.metrics.results import AggregateResult, SimulationResult, aggregate_results
from repro.obs.primitives import MetricsRegistry
from repro.obs.profile import merge_profiles
from repro.obs.provenance import build_manifest
from repro.obs.timeseries import merge_timeseries
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.contact import ContactTrace
from repro.workload.config import WorkloadConfig

__all__ = [
    "RunTelemetry",
    "ExperimentResult",
    "experiment_config",
    "run_single",
    "run_repeated",
    "run_comparison",
    "run_experiment",
]

#: One picklable unit of work for the process pool.  The trailing
#: SimulatorConfig is ``None`` for plain result-only runs; when present,
#: the worker also ships its telemetry back (see :class:`RunTelemetry`).
_Task = Tuple[
    ContactTrace,
    Callable[[], CachingScheme],
    WorkloadConfig,
    int,
    Optional[SimulatorConfig],
]

#: Fresh-pool attempts after worker crashes before giving up.
_MAX_POOL_RETRIES = 2


@dataclass
class RunTelemetry:
    """Per-run telemetry shipped back from a worker process.

    Everything here is picklable and travels *next to* the frozen
    :class:`SimulationResult` (never inside it), so the bitwise
    parallel==serial contract on results is untouched.
    """

    seed: int
    registry: MetricsRegistry
    profile: Dict[str, Dict[str, float]]
    timeseries: List[Dict[str, object]] = field(default_factory=list)


#: What one task evaluates to: the result, plus telemetry when requested.
_Outcome = Tuple[SimulationResult, Optional[RunTelemetry]]


def run_single(
    trace: ContactTrace,
    scheme: CachingScheme,
    workload: WorkloadConfig,
    seed: int = 0,
) -> SimulationResult:
    """One seeded simulation run."""
    return Simulator(trace, scheme, workload, SimulatorConfig(seed=seed)).run()


def _execute_task(task: _Task) -> _Outcome:
    """Worker entry point; module-level so it pickles under any start method."""
    trace, scheme_factory, workload, seed, config = task
    if config is None:
        return run_single(trace, scheme_factory(), workload, seed=seed), None
    simulator = Simulator(
        trace,
        scheme_factory(),
        workload,
        dataclasses.replace(config, seed=seed),
    )
    result = simulator.run()
    telemetry = RunTelemetry(
        seed=seed,
        registry=simulator.registry,
        profile=simulator.profiler.as_dict(),
        timeseries=simulator.timeseries.rows(),
    )
    return result, telemetry


def _execute_all(
    tasks: Sequence[_Task],
    workers: Optional[int],
    max_retries: int = _MAX_POOL_RETRIES,
) -> List[_Outcome]:
    """Run tasks serially or on a process pool, preserving input order.

    ``workers`` of ``None``/``0``/``1`` means serial — the default, so
    the pool (and its pickling constraints) is strictly opt-in.

    The parallel path is fault-tolerant: results are slotted by *task
    index*, and when a worker crash breaks the pool the still-unfinished
    indices are resubmitted to a fresh pool.  Because every task tuple
    already carries its own seed, the retried runs are bit-identical to
    what the crashed pool would have produced — the seed→run mapping is
    never re-derived from completion or worker order.  Exceptions
    *raised by a task* (as opposed to a dying worker process) are
    deterministic and propagate immediately instead of being retried.
    """
    if not workers or workers <= 1 or len(tasks) <= 1:
        return [_execute_task(task) for task in tasks]
    results: List[Optional[_Outcome]] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    for attempt in range(max_retries + 1):
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {index: pool.submit(_execute_task, tasks[index]) for index in pending}
            broken = False
            for index, future in futures.items():
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    # A worker died (crash/OOM/os._exit); every future
                    # still in flight on this pool fails the same way.
                    # Leave those slots None and retry them on a fresh
                    # pool below.
                    broken = True
        pending = [index for index in pending if results[index] is None]
        if not broken or not pending:
            break
    if pending:
        raise SimulationError(
            f"parallel runner gave up on {len(pending)} task(s) after "
            f"{max_retries + 1} pool attempts (repeated worker crashes)"
        )
    # Slots are filled in task-index order, which is seed order; the
    # aggregate is therefore bitwise-identical to the serial path.
    return [result for result in results if result is not None]


def run_repeated(
    trace: ContactTrace,
    scheme_factory: Callable[[], CachingScheme],
    workload: WorkloadConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    max_retries: int = _MAX_POOL_RETRIES,
) -> AggregateResult:
    """The paper's repetition protocol: same trace and scheme, several
    seeds for data/query randomness, aggregated with CIs.

    With ``workers > 1`` the seeds run on a process pool; results are
    aggregated in seed order either way, so the aggregate is identical —
    including across worker-crash retries, because each task carries its
    pinned seed (see :func:`_execute_all`).
    """
    tasks: List[_Task] = [
        (trace, scheme_factory, workload, seed, None) for seed in seeds
    ]
    return aggregate_results(
        [result for result, _ in _execute_all(tasks, workers, max_retries)]
    )


def run_comparison(
    trace: ContactTrace,
    factories: Dict[str, Callable[[], CachingScheme]],
    workload: WorkloadConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    max_retries: int = _MAX_POOL_RETRIES,
) -> Dict[str, AggregateResult]:
    """All schemes on an identical trace + workload (paired comparison).

    With ``workers > 1`` the full (scheme × seed) grid is flattened into
    one task list so the pool stays busy across scheme boundaries.
    """
    names = list(factories)
    tasks: List[_Task] = [
        (trace, factories[name], workload, seed, None)
        for name in names
        for seed in seeds
    ]
    outcomes = _execute_all(tasks, workers, max_retries)
    per_scheme: Dict[str, List[SimulationResult]] = {name: [] for name in names}
    for (name, _seed), (result, _telemetry) in zip(
        ((name, seed) for name in names for seed in seeds), outcomes
    ):
        per_scheme[name].append(result)
    return {name: aggregate_results(per_scheme[name]) for name in names}


# --- full experiments with telemetry and provenance ------------------------


@dataclass
class ExperimentResult:
    """A repeated experiment plus its merged telemetry and provenance.

    The paper-facing numbers live in ``aggregate`` (mean ± 95% CI over
    the repetitions) and ``results`` (per-seed); the observability
    artefacts — merged metrics registry, merged profile, seed-tagged
    time-series rows — and the provenance ``manifest`` ride alongside.
    """

    aggregate: AggregateResult
    results: List[SimulationResult]
    registry: MetricsRegistry
    profile: Dict[str, Dict[str, float]]
    timeseries: List[Dict[str, object]]
    manifest: Dict[str, Any]


def experiment_config(
    trace: ContactTrace,
    scheme: Any,
    workload: WorkloadConfig,
    config: SimulatorConfig,
) -> Dict[str, Any]:
    """The deterministic inputs of an experiment, as a manifest config.

    *scheme* is any JSON-serialisable description — the scheme name, or
    a dict carrying its parameters too.  Output paths (``trace_path``)
    and the per-repetition ``seed`` are excluded: they vary between
    invocations of the *same* experiment, and the provenance hash must
    identify the experiment, not the invocation (seeds are recorded
    separately in the manifest).
    """
    sim_config = dataclasses.asdict(config)
    sim_config.pop("seed")
    sim_config.pop("trace_path")
    return {
        "trace": {
            "name": trace.name,
            "num_nodes": trace.num_nodes,
            "num_contacts": trace.num_contacts,
            "start_time": trace.start_time,
            "end_time": trace.end_time,
            "granularity": trace.granularity,
        },
        "scheme": scheme,
        "workload": dataclasses.asdict(workload),
        "simulator": sim_config,
    }


def _merge_telemetry(
    telemetries: Sequence[RunTelemetry],
) -> Tuple[MetricsRegistry, Dict[str, Dict[str, float]], List[Dict[str, object]]]:
    """Combine per-worker telemetry deterministically (seed order)."""
    ordered = sorted(telemetries, key=lambda t: t.seed)
    registry = MetricsRegistry()
    for telemetry in ordered:
        registry.merge(telemetry.registry)
    profile = merge_profiles(t.profile for t in ordered)
    timeseries = merge_timeseries((t.seed, t.timeseries) for t in ordered)
    return registry, profile, timeseries


def run_experiment(
    trace: ContactTrace,
    scheme_factory: Callable[[], CachingScheme],
    workload: WorkloadConfig,
    seeds: Sequence[int],
    config: Optional[SimulatorConfig] = None,
    workers: Optional[int] = None,
    max_retries: int = _MAX_POOL_RETRIES,
    scheme_info: Any = None,
    manifest_config: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """Repeated runs with full telemetry and a provenance manifest.

    Like :func:`run_repeated`, but each worker additionally ships back
    its :class:`RunTelemetry` (metrics registry, profile, time-series),
    which is merged in seed order — ``workers > 1`` reports carry exactly
    the telemetry a serial sweep would (deterministic parts bit-equal;
    wall-clock span *times* naturally differ between machines).

    *scheme_info* overrides the scheme description recorded in the
    manifest (defaults to the scheme's name); pass a dict to capture the
    scheme's parameters in the config hash too.  *manifest_config*
    replaces the derived :func:`experiment_config` wholesale — the
    scenario layer passes its spec's provenance config here, so runs
    launched from the same scenario file hash identically.
    """
    base = config or SimulatorConfig()
    tasks: List[_Task] = [
        (trace, scheme_factory, workload, seed, base) for seed in seeds
    ]
    outcomes = _execute_all(tasks, workers, max_retries)
    results = [result for result, _ in outcomes]
    telemetries = [t for _, t in outcomes if t is not None]
    registry, profile, timeseries = _merge_telemetry(telemetries)
    if manifest_config is None:
        if scheme_info is None:
            scheme_info = scheme_factory().name
        manifest_config = experiment_config(trace, scheme_info, workload, base)
    manifest = build_manifest(manifest_config, list(seeds))
    return ExperimentResult(
        aggregate=aggregate_results(results),
        results=results,
        registry=registry,
        profile=profile,
        timeseries=timeseries,
        manifest=manifest,
    )
