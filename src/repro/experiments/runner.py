"""Seeded execution helpers for the experiment harness.

Repetition over seeds — and the cross-scheme comparisons built on it —
is embarrassingly parallel: each task is a pure function of
``(trace, scheme_factory, workload, seed)``.  ``run_repeated`` and
``run_comparison`` accept a ``workers=`` argument that fans the tasks out
over a :class:`~concurrent.futures.ProcessPoolExecutor`; the default
stays strictly serial so determinism-sensitive tests and tiny sweeps pay
no pool overhead.

Parallel execution is bit-identical to serial execution: every run draws
only from seed-derived streams, results are collected in seed order, and
aggregation is order-stable.  The only requirement is picklability —
pass a module-level class or :func:`functools.partial` as the factory,
not a lambda or closure.

Fault tolerance: a crashed worker (OOM-killed child, segfaulting native
extension) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`.
The seed→run mapping is **pinned at task construction** — each task tuple
carries its own seed — so retrying the unfinished tasks on a fresh pool
(in whatever worker order) reproduces exactly the results the original
pool would have produced.  Deterministic task exceptions are *not*
retried; they propagate immediately.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.caching.base import CachingScheme
from repro.errors import SimulationError
from repro.metrics.results import AggregateResult, SimulationResult, aggregate_results
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.contact import ContactTrace
from repro.workload.config import WorkloadConfig

__all__ = ["run_single", "run_repeated", "run_comparison"]

#: One picklable unit of work for the process pool.
_Task = Tuple[ContactTrace, Callable[[], CachingScheme], WorkloadConfig, int]

#: Fresh-pool attempts after worker crashes before giving up.
_MAX_POOL_RETRIES = 2


def run_single(
    trace: ContactTrace,
    scheme: CachingScheme,
    workload: WorkloadConfig,
    seed: int = 0,
) -> SimulationResult:
    """One seeded simulation run."""
    return Simulator(trace, scheme, workload, SimulatorConfig(seed=seed)).run()


def _execute_task(task: _Task) -> SimulationResult:
    """Worker entry point; module-level so it pickles under any start method."""
    trace, scheme_factory, workload, seed = task
    return run_single(trace, scheme_factory(), workload, seed=seed)


def _execute_all(
    tasks: Sequence[_Task],
    workers: Optional[int],
    max_retries: int = _MAX_POOL_RETRIES,
) -> List[SimulationResult]:
    """Run tasks serially or on a process pool, preserving input order.

    ``workers`` of ``None``/``0``/``1`` means serial — the default, so
    the pool (and its pickling constraints) is strictly opt-in.

    The parallel path is fault-tolerant: results are slotted by *task
    index*, and when a worker crash breaks the pool the still-unfinished
    indices are resubmitted to a fresh pool.  Because every task tuple
    already carries its own seed, the retried runs are bit-identical to
    what the crashed pool would have produced — the seed→run mapping is
    never re-derived from completion or worker order.  Exceptions
    *raised by a task* (as opposed to a dying worker process) are
    deterministic and propagate immediately instead of being retried.
    """
    if not workers or workers <= 1 or len(tasks) <= 1:
        return [_execute_task(task) for task in tasks]
    results: List[Optional[SimulationResult]] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    for attempt in range(max_retries + 1):
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {index: pool.submit(_execute_task, tasks[index]) for index in pending}
            broken = False
            for index, future in futures.items():
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    # A worker died (crash/OOM/os._exit); every future
                    # still in flight on this pool fails the same way.
                    # Leave those slots None and retry them on a fresh
                    # pool below.
                    broken = True
        pending = [index for index in pending if results[index] is None]
        if not broken or not pending:
            break
    if pending:
        raise SimulationError(
            f"parallel runner gave up on {len(pending)} task(s) after "
            f"{max_retries + 1} pool attempts (repeated worker crashes)"
        )
    # Slots are filled in task-index order, which is seed order; the
    # aggregate is therefore bitwise-identical to the serial path.
    return [result for result in results if result is not None]


def run_repeated(
    trace: ContactTrace,
    scheme_factory: Callable[[], CachingScheme],
    workload: WorkloadConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    max_retries: int = _MAX_POOL_RETRIES,
) -> AggregateResult:
    """The paper's repetition protocol: same trace and scheme, several
    seeds for data/query randomness, aggregated with CIs.

    With ``workers > 1`` the seeds run on a process pool; results are
    aggregated in seed order either way, so the aggregate is identical —
    including across worker-crash retries, because each task carries its
    pinned seed (see :func:`_execute_all`).
    """
    tasks: List[_Task] = [(trace, scheme_factory, workload, seed) for seed in seeds]
    return aggregate_results(_execute_all(tasks, workers, max_retries))


def run_comparison(
    trace: ContactTrace,
    factories: Dict[str, Callable[[], CachingScheme]],
    workload: WorkloadConfig,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    max_retries: int = _MAX_POOL_RETRIES,
) -> Dict[str, AggregateResult]:
    """All schemes on an identical trace + workload (paired comparison).

    With ``workers > 1`` the full (scheme × seed) grid is flattened into
    one task list so the pool stays busy across scheme boundaries.
    """
    names = list(factories)
    tasks: List[_Task] = [
        (trace, factories[name], workload, seed) for name in names for seed in seeds
    ]
    results = _execute_all(tasks, workers, max_retries)
    per_scheme: Dict[str, List[SimulationResult]] = {name: [] for name in names}
    for (name, _seed), result in zip(
        ((name, seed) for name in names for seed in seeds), results
    ):
        per_scheme[name].append(result)
    return {name: aggregate_results(per_scheme[name]) for name in names}
