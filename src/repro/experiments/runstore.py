"""Run directories: persist an experiment and render its report.

A *run directory* is the on-disk form of an
:class:`repro.experiments.runner.ExperimentResult`:

========================  ==================================================
``result.json``           aggregate + per-seed :class:`SimulationResult` rows
``manifest.json``         provenance (config hash, seeds, git, platform)
``metrics.json``          merged :class:`MetricsRegistry` snapshot
``profile.json``          merged profile (``{}`` when profiling was off)
``timeseries.jsonl``      seed-tagged samples (absent when sampling was off)
``timeseries.csv``        scalar columns of the same samples
``trace.jsonl``           lifecycle trace (only when tracing was on)
``health.jsonl``          serve-mode health log (only with ``--slo``/health)
``memory.jsonl``          RSS/heap/attribution samples (``--mem-profile``)
========================  ==================================================

``python -m repro report <run-dir>`` renders the whole directory as one
Markdown document via :func:`render_run_report`; every section degrades
gracefully when its file is absent, so result-only runs still report.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult
from repro.obs.derive import render_audit_report
from repro.obs.diagnose import render_diagnosis, run_diagnosis
from repro.obs.health import read_health_log, render_health_table
from repro.obs.memory import read_memory_log, render_memory_table
from repro.obs.profile import check_profile_tree, render_profile_table
from repro.obs.provenance import write_manifest
from repro.obs.recorder import read_events
from repro.obs.timeseries import summarize_timeseries, write_csv, write_jsonl

__all__ = [
    "save_run",
    "load_run",
    "contact_trace_from_manifest",
    "render_run_report",
]

RESULT_FILE = "result.json"
MANIFEST_FILE = "manifest.json"
METRICS_FILE = "metrics.json"
PROFILE_FILE = "profile.json"
TIMESERIES_FILE = "timeseries.jsonl"
TIMESERIES_CSV_FILE = "timeseries.csv"
TRACE_FILE = "trace.jsonl"
HEALTH_FILE = "health.jsonl"
MEMORY_FILE = "memory.jsonl"


def _dump(value: Any, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(value, handle, indent=2, sort_keys=True)
        handle.write("\n")


def save_run(result: ExperimentResult, run_dir: str) -> str:
    """Write *result* as a run directory (created if missing)."""
    os.makedirs(run_dir, exist_ok=True)
    _dump(
        {
            "aggregate": dataclasses.asdict(result.aggregate),
            "results": [dataclasses.asdict(r) for r in result.results],
        },
        os.path.join(run_dir, RESULT_FILE),
    )
    write_manifest(result.manifest, os.path.join(run_dir, MANIFEST_FILE))
    _dump(result.registry.snapshot(), os.path.join(run_dir, METRICS_FILE))
    _dump(result.profile, os.path.join(run_dir, PROFILE_FILE))
    if result.timeseries:
        write_jsonl(result.timeseries, os.path.join(run_dir, TIMESERIES_FILE))
        write_csv(result.timeseries, os.path.join(run_dir, TIMESERIES_CSV_FILE))
    return run_dir


def _load_json(run_dir: str, name: str) -> Optional[Any]:
    path = os.path.join(run_dir, name)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _load_jsonl(run_dir: str, name: str) -> Optional[List[Dict[str, Any]]]:
    path = os.path.join(run_dir, name)
    if not os.path.exists(path):
        return None
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def load_run(run_dir: str) -> Dict[str, Any]:
    """Read a run directory back as plain data (missing parts → None)."""
    if not os.path.isdir(run_dir):
        raise ConfigurationError(f"not a run directory: {run_dir!r}")
    return {
        "result": _load_json(run_dir, RESULT_FILE),
        "manifest": _load_json(run_dir, MANIFEST_FILE),
        "metrics": _load_json(run_dir, METRICS_FILE),
        "profile": _load_json(run_dir, PROFILE_FILE),
        "timeseries": _load_jsonl(run_dir, TIMESERIES_FILE),
        "trace_path": (
            os.path.join(run_dir, TRACE_FILE)
            if os.path.exists(os.path.join(run_dir, TRACE_FILE))
            else None
        ),
        "health_path": (
            os.path.join(run_dir, HEALTH_FILE)
            if os.path.exists(os.path.join(run_dir, HEALTH_FILE))
            else None
        ),
        "memory_path": (
            os.path.join(run_dir, MEMORY_FILE)
            if os.path.exists(os.path.join(run_dir, MEMORY_FILE))
            else None
        ),
    }


def contact_trace_from_manifest(manifest: Optional[Dict[str, Any]]):
    """Rebuild the run's :class:`ContactTrace` from its manifest.

    The manifest's hashed config embeds the full ``TraceSpec``
    (``config.scenario.trace``), and trace construction is deterministic
    from it, so the rebuilt trace is bit-identical to the one the run
    used.  Returns ``None`` when the manifest is absent, predates the
    scenario config layout, or the spec no longer builds — the fidelity
    sections that need mobility information then degrade gracefully.
    """
    if not manifest:
        return None
    scenario = (manifest.get("config") or {}).get("scenario") or {}
    record = scenario.get("trace")
    if not isinstance(record, dict):
        return None
    from repro.scenario import TraceSpec, build_trace

    try:
        return build_trace(TraceSpec.from_dict(record))
    except (ConfigurationError, KeyError, TypeError, ValueError, OSError):
        return None


# --- report rendering ------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return f"{value:.4g}"
    return str(value)


def _kv_table(pairs: List[tuple]) -> List[str]:
    lines = ["| metric | value |", "|---|---:|"]
    lines += [f"| {key} | {_fmt(value)} |" for key, value in pairs]
    return lines


def _aggregate_section(result: Dict[str, Any]) -> List[str]:
    aggregate = result["aggregate"]
    lines = ["## Metrics", ""]
    lines += _kv_table(
        [
            ("scheme", aggregate["name"]),
            ("runs", aggregate["runs"]),
            (
                "successful ratio",
                f"{aggregate['successful_ratio']:.4f} "
                f"± {aggregate['successful_ratio_ci']:.4f}",
            ),
            (
                "mean access delay (h)",
                _fmt(aggregate["mean_access_delay"] / 3600.0)
                + " ± "
                + _fmt(aggregate["mean_access_delay_ci"] / 3600.0),
            ),
            (
                "caching overhead",
                f"{aggregate['caching_overhead']:.4g} "
                f"± {aggregate['caching_overhead_ci']:.4g}",
            ),
            ("replacement overhead", aggregate["replacement_overhead"]),
            ("queries issued (mean)", aggregate["queries_issued"]),
        ]
    )
    rows = result.get("results") or []
    if rows:
        lines += ["", "Per-seed:", ""]
        lines += [
            "| seed | queries | satisfied | ratio | delay (h) |",
            "|---:|---:|---:|---:|---:|",
        ]
        for row in rows:
            delay = row["mean_access_delay"]
            delay_h = "n/a" if math.isnan(delay) else f"{delay / 3600.0:.2f}"
            lines.append(
                f"| {row['seed']} | {row['queries_issued']} "
                f"| {row['queries_satisfied']} "
                f"| {row['successful_ratio']:.4f} | {delay_h} |"
            )
    return lines


def _manifest_section(manifest: Dict[str, Any]) -> List[str]:
    lines = ["## Provenance", ""]
    git = manifest.get("git") or {}
    platform_info = manifest.get("platform") or {}
    packages = manifest.get("packages") or {}
    pairs = [
        ("config hash", manifest.get("config_hash", "n/a")),
        ("seeds", ", ".join(str(s) for s in manifest.get("seeds", []))),
        (
            "git",
            (git.get("revision", "")[:12] + (" (dirty)" if git.get("dirty") else ""))
            if git
            else "n/a",
        ),
        (
            "platform",
            f"{platform_info.get('implementation', '?')} "
            f"{platform_info.get('python', '?')} on "
            f"{platform_info.get('system', '?')}/{platform_info.get('machine', '?')}",
        ),
        ("packages", ", ".join(f"{k} {v}" for k, v in sorted(packages.items()))),
    ]
    lines += ["| field | value |", "|---|---|"]
    lines += [f"| {key} | {value} |" for key, value in pairs]
    return lines


def _metrics_registry_section(metrics: Dict[str, Any]) -> List[str]:
    lines = ["## Instrument registry", ""]
    lines += ["| instrument | value |", "|---|---|"]
    for name, value in sorted(metrics.items()):
        if isinstance(value, dict):
            rendered = ", ".join(f"{k}={_fmt(v)}" for k, v in value.items())
        else:
            rendered = _fmt(value)
        lines.append(f"| {name} | {rendered} |")
    return lines


def _event_counts_section(events: List[Any]) -> List[str]:
    """Trace events grouped by kind — churn/failure/re-election runs show
    their ``node.failed``/``ncl.reelected``/``cache.migrated`` activity
    here at a glance."""
    counts: Dict[str, int] = {}
    for event in events:
        kind = getattr(event.kind, "value", event.kind)
        counts[kind] = counts.get(kind, 0) + 1
    lines = ["## Trace events", "", "| kind | count |", "|---|---:|"]
    lines += [f"| {kind} | {count} |" for kind, count in sorted(counts.items())]
    return lines


def _timeseries_section(rows: List[Dict[str, Any]]) -> List[str]:
    summary = summarize_timeseries(rows)
    lines = ["## Time series", "", f"{len(rows)} samples.", ""]
    lines += ["| column | min | mean | max | last |", "|---|---:|---:|---:|---:|"]
    for name, stats in summary.items():
        lines.append(
            f"| {name} | {_fmt(stats['min'])} | {_fmt(stats['mean'])} "
            f"| {_fmt(stats['max'])} | {_fmt(stats['last'])} |"
        )
    return lines


def render_run_report(run_dir: str, audit_limit: int = 10) -> str:
    """One Markdown document for everything a run directory recorded."""
    data = load_run(run_dir)
    sections: List[str] = [f"# Run report: {os.path.basename(os.path.normpath(run_dir))}"]

    if data["manifest"]:
        sections.append("\n".join(_manifest_section(data["manifest"])))
    if data["result"]:
        sections.append("\n".join(_aggregate_section(data["result"])))
    if data["metrics"]:
        sections.append("\n".join(_metrics_registry_section(data["metrics"])))
    if data["profile"]:
        # The structural invariant (children ≤ parent cumulative time)
        # is enforced before rendering, so a report never shows an
        # inconsistent tree.
        check_profile_tree(data["profile"])
        sections.append("## Profile\n\n" + render_profile_table(data["profile"]))
    if data["timeseries"]:
        sections.append("\n".join(_timeseries_section(data["timeseries"])))
    if data["trace_path"]:
        events = list(read_events(data["trace_path"]))
        sections.append("\n".join(_event_counts_section(events)))
        audit = render_audit_report(events, limit=audit_limit)
        sections.append("## Trace audit\n\n```\n" + audit + "\n```")
        diagnosis = run_diagnosis(
            events,
            contact_trace=contact_trace_from_manifest(data["manifest"]),
            provenance=data["manifest"],
        )
        sections.append(render_diagnosis(diagnosis, level=2).rstrip())
    if data["health_path"]:
        health = read_health_log(Path(data["health_path"]))
        sections.append(
            "## Live health\n\n```\n"
            + render_health_table(health, limit=audit_limit)
            + "\n```"
        )
    if data["memory_path"]:
        memory = read_memory_log(Path(data["memory_path"]))
        sections.append(
            "## Memory\n\n```\n"
            + render_memory_table(memory, limit=audit_limit)
            + "\n```"
        )

    if len(sections) == 1:
        sections.append("(run directory is empty)")
    return "\n\n".join(sections) + "\n"
