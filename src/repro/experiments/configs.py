"""Experiment scales and scheme factories.

The paper runs on the full CRAWDAD traces; regenerating every figure at
that scale takes hours in a pure-Python simulator.  Each experiment
therefore accepts an :class:`ExperimentScale`:

* ``SMOKE_SCALE`` — seconds; integration tests.
* ``BENCH_SCALE`` — tens of seconds per figure; the pytest-benchmark
  targets.
* ``PAPER_SCALE`` — full node counts, quarter-length traces, multiple
  seeds; the numbers recorded in EXPERIMENTS.md
  (``examples/run_paper_experiments.py``).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.caching import CachingScheme
from repro.core.replacement import (
    FIFOPolicy,
    GreedyDualSizePolicy,
    LRUPolicy,
    ReplacementPolicy,
    UtilityKnapsackPolicy,
)
from repro.errors import ConfigurationError
from repro.scenario import SCHEMES, SchemeSpec, build_scheme
from repro.traces.catalog import TRACE_PRESETS
from repro.traces.contact import ContactTrace
from repro.traces.synthetic import generate_synthetic_trace

__all__ = [
    "ExperimentScale",
    "SMOKE_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "scheme_factories",
    "replacement_factories",
    "load_scaled_trace",
]


@dataclass(frozen=True)
class ExperimentScale:
    """How large to run an experiment."""

    name: str
    node_factor: float
    time_factor: float
    seeds: tuple
    trace_seed: int = 1

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("at least one simulation seed is required")
        if self.node_factor <= 0 or self.time_factor <= 0:
            raise ConfigurationError("scale factors must be positive")


SMOKE_SCALE = ExperimentScale("smoke", node_factor=0.35, time_factor=0.08, seeds=(7,))
BENCH_SCALE = ExperimentScale("bench", node_factor=0.6, time_factor=0.12, seeds=(7,))
PAPER_SCALE = ExperimentScale("paper", node_factor=1.0, time_factor=0.25, seeds=(7, 11, 13))


def load_scaled_trace(preset_key: str, scale: ExperimentScale) -> ContactTrace:
    """The synthetic stand-in for *preset_key* at the given scale."""
    preset = TRACE_PRESETS[preset_key]
    config = preset.synthetic_config(
        seed=scale.trace_seed,
        node_factor=scale.node_factor,
        time_factor=scale.time_factor,
    )
    return generate_synthetic_trace(config)


SchemeFactory = Callable[[], CachingScheme]


def scheme_factories(
    num_ncls: int,
    ncl_time_budget: float,
    replacement: Optional[Callable[[], ReplacementPolicy]] = None,
) -> Dict[str, SchemeFactory]:
    """The five schemes of Sec. VI, ready to instantiate per run.

    Thin shim over the scenario registry: each factory is a partial of
    the registered builder, so every name in ``SCHEMES`` is covered and
    factories stay picklable whenever *replacement* is (pass a
    module-level policy class, not a lambda, for parallel sweeps).
    """
    return {
        name: functools.partial(
            build_scheme,
            SchemeSpec(name=name, num_ncls=num_ncls),
            ncl_time_budget,
            replacement,
        )
        for name in SCHEMES.names()
    }


def replacement_factories() -> Dict[str, Callable[[], ReplacementPolicy]]:
    """The four replacement policies compared in Fig. 12."""
    return {
        "utility_knapsack": lambda: UtilityKnapsackPolicy(probabilistic=True),
        "fifo": FIFOPolicy,
        "lru": LRUPolicy,
        "gds": GreedyDualSizePolicy,
    }
