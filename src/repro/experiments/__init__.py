"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.experiments.configs` — experiment scales (smoke / bench /
  paper) and scheme factories.
* :mod:`repro.experiments.runner` — seeded multi-run execution and
  sweeps.
* :mod:`repro.experiments.figures` — one entry point per paper artifact:
  ``table1``, ``fig4``, ``fig9a``, ``fig9b``, ``fig10``, ``fig11``,
  ``fig12``, ``fig13``.
* :mod:`repro.experiments.report` — ASCII rendering and CSV export of
  results.
* :mod:`repro.experiments.serve` — long-lived batch replay
  (``repro serve``): fit the network once, stream query batches.
"""

from repro.experiments.configs import (
    BENCH_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    scheme_factories,
)
from repro.experiments.figures import (
    FigureResult,
    Series,
    TableResult,
    fig4,
    fig7,
    fig9a,
    fig9b,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
)
from repro.experiments.runner import run_comparison, run_single
from repro.experiments.report import render_figure, render_table, results_to_csv
from repro.experiments.serve import (
    BatchResult,
    ServeSession,
    serve_repeated,
    summarize_throughput,
)

__all__ = [
    "ExperimentScale",
    "SMOKE_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "scheme_factories",
    "Series",
    "FigureResult",
    "TableResult",
    "table1",
    "fig4",
    "fig7",
    "fig9a",
    "fig9b",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "run_single",
    "run_comparison",
    "BatchResult",
    "ServeSession",
    "serve_repeated",
    "summarize_throughput",
    "render_figure",
    "render_table",
    "results_to_csv",
]
