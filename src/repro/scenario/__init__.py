"""Scenario layer: declarative run descriptions over name registries.

One :class:`ScenarioSpec` names everything that determines a run —
trace, workload, scheme, network dynamics, run knobs — and every name
resolves through a :class:`Registry` (:data:`SCHEMES`, :data:`ROUTERS`,
:data:`RESPONSE_STRATEGIES`, :data:`TRACE_SOURCES`).  Specs round-trip
through JSON, travel into process-pool workers, and supply the hashed
provenance config of the run manifest; the CLI, the experiment configs
and the runner all build runs through this layer.
"""

from repro.scenario.registry import (
    RESPONSE_STRATEGIES,
    ROUTERS,
    SCHEMES,
    TRACE_SOURCES,
    Registry,
)
from repro.scenario.spec import RunSpec, ScenarioSpec, SchemeSpec, TraceSpec
from repro.scenario.build import (
    build_scheme,
    build_trace,
    resolve_ncl_time_budget,
    run_scenario,
    scheme_factory,
    simulator_config,
)

__all__ = [
    "Registry",
    "SCHEMES",
    "ROUTERS",
    "RESPONSE_STRATEGIES",
    "TRACE_SOURCES",
    "TraceSpec",
    "SchemeSpec",
    "RunSpec",
    "ScenarioSpec",
    "build_trace",
    "build_scheme",
    "scheme_factory",
    "resolve_ncl_time_budget",
    "simulator_config",
    "run_scenario",
]
