"""Declarative run descriptions: one frozen, JSON-round-trippable spec.

A :class:`ScenarioSpec` names everything that determines a run — the
trace source, the workload, the scheme, the network-dynamics schedule,
and the run knobs — with each name resolving through the registries of
:mod:`repro.scenario.registry`.  A spec is:

* **frozen and picklable** — it travels into process-pool workers;
* **JSON-round-trippable** — ``ScenarioSpec.from_json(spec.to_json())``
  is the identity, so scenario files are first-class run inputs
  (``python -m repro simulate --scenario examples/churn.json``);
* **provenance-hashable** — :meth:`provenance_config` is the canonical
  dict fed to :func:`repro.obs.provenance.build_manifest`, with the
  per-invocation seed excluded so the hash identifies the experiment.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.sim.dynamics import DynamicsConfig
from repro.workload.config import WorkloadConfig

__all__ = ["TraceSpec", "SchemeSpec", "RunSpec", "ScenarioSpec"]


def _clean(record: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``None`` values so serialized specs stay minimal."""
    return {key: value for key, value in record.items() if value is not None}


@dataclass(frozen=True)
class TraceSpec:
    """Which contact trace to run on, resolved via ``TRACE_SOURCES``.

    ``name`` is a registered trace-source name (the Table I presets by
    default); ``seed`` drives the synthetic generator, and the factors
    scale the trace down while preserving contact density.
    """

    name: str = "mit_reality"
    seed: int = 1
    node_factor: float = 1.0
    time_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.node_factor <= 0 or self.time_factor <= 0:
            raise ConfigurationError("trace scale factors must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TraceSpec":
        return cls(**dict(record))


@dataclass(frozen=True)
class SchemeSpec:
    """Which caching scheme to run, resolved via ``SCHEMES``.

    The NCL knobs only matter for the intentional scheme; baselines
    ignore them.  ``ncl_time_budget`` of ``None`` means "the trace
    preset's published T when running on a preset, otherwise the
    adaptive calibration of Sec. IV-B".
    """

    name: str = "intentional"
    num_ncls: int = 5
    ncl_time_budget: Optional[float] = None
    response_strategy: str = "sigmoid"
    selection_strategy: str = "metric"
    reelect: bool = False
    #: k for the sparse k-NN NCL metric; ``None`` keeps the exact dense
    #: metric on dense graphs (sparse graphs default to DEFAULT_KNN_K)
    knn_k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_ncls < 1:
            raise ConfigurationError("num_ncls must be >= 1")
        if self.ncl_time_budget is not None and self.ncl_time_budget <= 0:
            raise ConfigurationError("ncl_time_budget must be positive")
        if self.knn_k is not None and self.knn_k < 1:
            raise ConfigurationError("knn_k must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return _clean(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SchemeSpec":
        return cls(**dict(record))


@dataclass(frozen=True)
class RunSpec:
    """Run-level knobs: seeding, repetition, and simulator settings."""

    seed: int = 7
    repeat: int = 1
    snapshot_period: float = 0.0
    graph_refresh_period: Optional[float] = None
    sample_period: Optional[float] = None
    profile: bool = False
    timeseries: bool = False
    validate_invariants: bool = False
    #: bounded-memory metrics collection (the heavy-traffic path)
    streaming_metrics: bool = False
    #: contact-graph storage: True/False force adjacency-list/dense,
    #: ``None`` auto-selects by node count (the scale-out path)
    sparse_graph: Optional[bool] = None
    #: sample RSS/heap/per-subsystem bytes at each telemetry boundary
    #: (measurement-only: excluded from the provenance hash)
    mem_profile: bool = False

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ConfigurationError("repeat must be >= 1")
        if self.snapshot_period < 0:
            raise ConfigurationError("snapshot_period must be non-negative")

    @property
    def seeds(self) -> List[int]:
        """The root seeds of the repetitions: seed .. seed + repeat - 1."""
        return list(range(self.seed, self.seed + self.repeat))

    def to_dict(self) -> Dict[str, Any]:
        return _clean(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "RunSpec":
        return cls(**dict(record))


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, self-describing run configuration."""

    trace: TraceSpec = TraceSpec()
    scheme: SchemeSpec = SchemeSpec()
    workload: WorkloadConfig = WorkloadConfig()
    run: RunSpec = RunSpec()
    dynamics: DynamicsConfig = DynamicsConfig()
    name: Optional[str] = None

    # --- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace": self.trace.to_dict(),
            "scheme": self.scheme.to_dict(),
            "workload": dataclasses.asdict(self.workload),
            "run": self.run.to_dict(),
        }
        if self.dynamics:
            record["dynamics"] = self.dynamics.to_dict()
        if self.name is not None:
            record["name"] = self.name
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            trace=TraceSpec.from_dict(record.get("trace", {})),
            scheme=SchemeSpec.from_dict(record.get("scheme", {})),
            workload=WorkloadConfig(**record.get("workload", {})),
            run=RunSpec.from_dict(record.get("run", {})),
            dynamics=DynamicsConfig.from_dict(record.get("dynamics", {})),
            name=record.get("name"),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from None
        if not isinstance(record, dict):
            raise ConfigurationError("scenario JSON must be an object")
        return cls.from_dict(record)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # --- provenance ------------------------------------------------------

    def provenance_config(self) -> Dict[str, Any]:
        """The hashable experiment identity: the spec minus invocation
        detail (the root seed and repetition count vary between
        invocations of the *same* experiment; the manifest records the
        actual seeds separately)."""
        record = self.to_dict()
        run = dict(record["run"])
        run.pop("seed", None)
        run.pop("repeat", None)
        # Memory profiling observes the process; it cannot change the
        # frozen results, so it is invocation detail, not identity.
        run.pop("mem_profile", None)
        record["run"] = run
        return {"scenario": record}
