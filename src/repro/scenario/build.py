"""Turn a :class:`~repro.scenario.spec.ScenarioSpec` into a running
experiment.

Every builder here is a module-level function, so the scheme factories
handed to the parallel runner are picklable
(:func:`functools.partial` over frozen specs) — a scenario runs
bit-identically serial or fanned out over a process pool.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Callable, Optional

from repro.caching import (
    BundleCache,
    CacheData,
    CachingScheme,
    IntentionalCaching,
    IntentionalConfig,
    NoCache,
    RandomCache,
)
from repro.core.replacement import ReplacementPolicy
from repro.scenario.registry import SCHEMES, TRACE_SOURCES
from repro.scenario.spec import ScenarioSpec, SchemeSpec, TraceSpec
from repro.sim.simulator import SimulatorConfig
from repro.traces.catalog import STREAM_PRESETS, TRACE_PRESETS
from repro.traces.contact import ContactTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult

__all__ = [
    "build_trace",
    "build_scheme",
    "scheme_factory",
    "resolve_ncl_time_budget",
    "simulator_config",
    "run_scenario",
]

#: optional factory producing a replacement policy per run (Fig. 12 sweeps)
ReplacementFactory = Callable[[], ReplacementPolicy]


# --- scheme builders (registered under their scenario names) ---------------


@SCHEMES.register("intentional")
def _build_intentional(
    spec: SchemeSpec,
    ncl_time_budget: Optional[float],
    replacement: Optional[ReplacementPolicy],
) -> CachingScheme:
    return IntentionalCaching(
        IntentionalConfig(
            num_ncls=spec.num_ncls,
            ncl_time_budget=ncl_time_budget,
            response_strategy=spec.response_strategy,
            selection_strategy=spec.selection_strategy,
            reelect=spec.reelect,
            knn_k=spec.knn_k,
        ),
        replacement=replacement,
    )


def _register_baseline(name: str, cls) -> None:
    # The baselines take no parameters; they ignore the NCL knobs.
    SCHEMES.register(name, lambda spec, ncl_time_budget, replacement: cls())


_register_baseline("nocache", NoCache)
_register_baseline("randomcache", RandomCache)
_register_baseline("cachedata", CacheData)
_register_baseline("bundlecache", BundleCache)


# --- builders ---------------------------------------------------------------


def build_trace(spec: TraceSpec) -> ContactTrace:
    """Load the contact trace a spec names, via ``TRACE_SOURCES``.

    Streaming sources (``STREAM_PRESETS``) return a lazy
    :class:`~repro.traces.stream.StreamingTrace` rather than a
    materialised :class:`ContactTrace`; the simulator accepts either.
    """
    return TRACE_SOURCES.get(spec.name)(spec)


def resolve_ncl_time_budget(spec: ScenarioSpec) -> Optional[float]:
    """The NCL time budget T this scenario runs with.

    An explicit value wins; otherwise a preset trace (Table I or a
    streaming preset) supplies its published per-trace T (Sec. IV-B),
    and a non-preset trace leaves it ``None`` so the scheme's adaptive
    calibration runs at warm-up.  Streaming presets always carry an
    explicit T: the adaptive calibration samples all-pairs delays,
    which is exactly the O(N²) work the sparse path exists to avoid.
    """
    if spec.scheme.ncl_time_budget is not None:
        return spec.scheme.ncl_time_budget
    preset = TRACE_PRESETS.get(spec.trace.name)
    if preset is not None:
        return preset.ncl_time_budget
    stream_preset = STREAM_PRESETS.get(spec.trace.name)
    return stream_preset.ncl_time_budget if stream_preset is not None else None


def build_scheme(
    spec: SchemeSpec,
    ncl_time_budget: Optional[float] = None,
    replacement: Optional[ReplacementFactory] = None,
) -> CachingScheme:
    """Instantiate the scheme a spec names (one fresh scheme per run)."""
    builder = SCHEMES.get(spec.name)
    return builder(spec, ncl_time_budget, replacement() if replacement else None)


def scheme_factory(
    spec: ScenarioSpec,
    replacement: Optional[ReplacementFactory] = None,
) -> Callable[[], CachingScheme]:
    """A picklable zero-argument scheme factory for the runner."""
    return functools.partial(
        build_scheme, spec.scheme, resolve_ncl_time_budget(spec), replacement
    )


def simulator_config(
    spec: ScenarioSpec, trace_path: Optional[str] = None
) -> SimulatorConfig:
    """The :class:`SimulatorConfig` a scenario's run knobs describe."""
    run = spec.run
    return SimulatorConfig(
        seed=run.seed,
        graph_refresh_period=run.graph_refresh_period,
        snapshot_period=run.snapshot_period,
        sample_period=run.sample_period,
        validate_invariants=run.validate_invariants,
        trace_path=trace_path,
        profile=run.profile,
        timeseries=run.timeseries,
        streaming_metrics=run.streaming_metrics,
        sparse_graph=run.sparse_graph,
        mem_profile=run.mem_profile,
        dynamics=spec.dynamics if spec.dynamics else None,
    )


def run_scenario(
    spec: ScenarioSpec,
    workers: Optional[int] = None,
    trace_path: Optional[str] = None,
    replacement: Optional[ReplacementFactory] = None,
) -> ExperimentResult:
    """Execute a scenario end-to-end: repetitions, telemetry, manifest.

    The manifest's hashed config is the scenario's
    :meth:`~repro.scenario.spec.ScenarioSpec.provenance_config` — runs
    launched from the same scenario file hash identically regardless of
    seed or worker count.
    """
    # Imported here, not at module top: repro.experiments imports this
    # package for its scheme-factory shim, so a top-level import would
    # make ``import repro.scenario`` order-dependent.
    from repro.experiments.runner import run_experiment

    return run_experiment(
        build_trace(spec.trace),
        scheme_factory(spec, replacement),
        spec.workload,
        spec.run.seeds,
        config=simulator_config(spec, trace_path=trace_path),
        workers=workers,
        scheme_info=spec.scheme.to_dict(),
        manifest_config=spec.provenance_config(),
    )
