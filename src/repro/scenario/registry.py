"""Name-based registries for the pluggable pieces of a scenario.

Every part of a run that a :class:`~repro.scenario.spec.ScenarioSpec`
names — the caching scheme, the trace source, a response strategy, a
router — resolves through one of these registries.  The registries are
the single source of truth for "what can a scenario file say": the CLI
lists them (``--list-schemes``), builders resolve through them, and
``scripts/check_registry.py`` asserts every registered name is smoke
tested and round-trips through scenario JSON.

Registration order is preserved (it defines CLI/compare ordering), and
extensions register their own entries::

    from repro.scenario import SCHEMES

    @SCHEMES.register("myscheme")
    def _build_myscheme(spec, ncl_time_budget, replacement):
        return MyScheme()
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.core.response import AlwaysRespond, PathAwareResponse, SigmoidResponse
from repro.errors import ConfigurationError
from repro.routing import (
    DirectDeliveryRouter,
    EpidemicRouter,
    GradientRouter,
    ProphetRouter,
    RateGradientRouter,
    SprayAndWaitRouter,
)
from repro.traces.catalog import TRACE_PRESETS, load_preset_trace

__all__ = [
    "Registry",
    "SCHEMES",
    "ROUTERS",
    "RESPONSE_STRATEGIES",
    "TRACE_SOURCES",
]

T = TypeVar("T")


class Registry(Generic[T]):
    """An ordered name → value mapping with decorator registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str, value: Optional[T] = None):
        """Register *value* under *name*; usable as a decorator.

        Duplicate names are rejected — silently shadowing a scheme would
        change what every existing scenario file means.
        """
        if name in self._entries:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered"
            )

        def _store(entry: T) -> T:
            self._entries[name] = entry
            return entry

        if value is None:
            return _store
        return _store(value)

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Registry({self.kind}: {list(self._entries)})"


#: scheme name → builder ``(SchemeSpec, ncl_time_budget, replacement) -> CachingScheme``
#: (entries are registered by :mod:`repro.scenario.build` to avoid import cycles)
SCHEMES: Registry = Registry("scheme")

#: router name → router class (the DTN forwarding primitives)
ROUTERS: Registry = Registry("router")
ROUTERS.register("gradient", GradientRouter)
ROUTERS.register("rate_gradient", RateGradientRouter)
ROUTERS.register("epidemic", EpidemicRouter)
ROUTERS.register("direct", DirectDeliveryRouter)
ROUTERS.register("prophet", ProphetRouter)
ROUTERS.register("spray", SprayAndWaitRouter)

#: response-strategy name → class (Sec. V-C decision rules)
RESPONSE_STRATEGIES: Registry = Registry("response strategy")
RESPONSE_STRATEGIES.register("sigmoid", SigmoidResponse)
RESPONSE_STRATEGIES.register("path_aware", PathAwareResponse)
RESPONSE_STRATEGIES.register("always", AlwaysRespond)

#: trace-source name → loader ``(TraceSpec) -> ContactTrace``
TRACE_SOURCES: Registry = Registry("trace source")


def _register_presets() -> None:
    for key in TRACE_PRESETS:

        def _load(spec, _key: str = key):
            return load_preset_trace(
                _key,
                seed=spec.seed,
                node_factor=spec.node_factor,
                time_factor=spec.time_factor,
            )

        TRACE_SOURCES.register(key, _load)


_register_presets()
