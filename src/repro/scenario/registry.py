"""Name-based registries for the pluggable pieces of a scenario.

Every part of a run that a :class:`~repro.scenario.spec.ScenarioSpec`
names — the caching scheme, the trace source, a response strategy, a
router — resolves through one of these registries.  The registries are
the single source of truth for "what can a scenario file say": the CLI
lists them (``--list-schemes``), builders resolve through them, and
``scripts/check_registry.py`` asserts every registered name is smoke
tested and round-trips through scenario JSON.

Registration order is preserved (it defines CLI/compare ordering), and
extensions register their own entries::

    from repro.scenario import SCHEMES

    @SCHEMES.register("myscheme")
    def _build_myscheme(spec, ncl_time_budget, replacement):
        return MyScheme()
"""

from __future__ import annotations

from repro.core.response import AlwaysRespond, PathAwareResponse, SigmoidResponse
from repro.registry import Registry
from repro.routing import (
    DirectDeliveryRouter,
    EpidemicRouter,
    GradientRouter,
    ProphetRouter,
    RateGradientRouter,
    SprayAndWaitRouter,
)
from repro.traces.catalog import (
    STREAM_PRESETS,
    TRACE_PRESETS,
    load_preset_trace,
    load_stream_trace,
)

__all__ = [
    "Registry",
    "SCHEMES",
    "ROUTERS",
    "RESPONSE_STRATEGIES",
    "TRACE_SOURCES",
]


#: scheme name → builder ``(SchemeSpec, ncl_time_budget, replacement) -> CachingScheme``
#: (entries are registered by :mod:`repro.scenario.build` to avoid import cycles)
SCHEMES: Registry = Registry("scheme")

#: router name → router class (the DTN forwarding primitives)
ROUTERS: Registry = Registry("router")
ROUTERS.register("gradient", GradientRouter)
ROUTERS.register("rate_gradient", RateGradientRouter)
ROUTERS.register("epidemic", EpidemicRouter)
ROUTERS.register("direct", DirectDeliveryRouter)
ROUTERS.register("prophet", ProphetRouter)
ROUTERS.register("spray", SprayAndWaitRouter)

#: response-strategy name → class (Sec. V-C decision rules)
RESPONSE_STRATEGIES: Registry = Registry("response strategy")
RESPONSE_STRATEGIES.register("sigmoid", SigmoidResponse)
RESPONSE_STRATEGIES.register("path_aware", PathAwareResponse)
RESPONSE_STRATEGIES.register("always", AlwaysRespond)

#: trace-source name → loader ``(TraceSpec) -> ContactTrace``
TRACE_SOURCES: Registry = Registry("trace source")


def _register_presets() -> None:
    for key in TRACE_PRESETS:

        def _load(spec, _key: str = key):
            return load_preset_trace(
                _key,
                seed=spec.seed,
                node_factor=spec.node_factor,
                time_factor=spec.time_factor,
            )

        TRACE_SOURCES.register(key, _load)

    # Scale-out streaming sources: resolve to a lazy StreamingTrace
    # (bounded memory); the simulator feeds itself one contact ahead.
    for key in STREAM_PRESETS:

        def _load_stream(spec, _key: str = key):
            return load_stream_trace(
                _key,
                seed=spec.seed,
                node_factor=spec.node_factor,
                time_factor=spec.time_factor,
            )

        TRACE_SOURCES.register(key, _load_stream)


_register_presets()
