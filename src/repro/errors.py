"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch a single base class at an API boundary.  Subclasses are
deliberately fine-grained: each corresponds to a distinct failure mode a
downstream user may want to handle differently (bad configuration vs. a
malformed trace file vs. an impossible buffer operation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A simulation, workload, or scheme parameter is invalid.

    Raised eagerly at construction time so that misconfiguration is
    reported before a potentially long simulation starts.
    """


class TraceFormatError(ReproError):
    """A contact-trace file or record could not be parsed."""


class TraceConsistencyError(ReproError):
    """A trace violates an invariant (e.g. contact ends before it starts)."""


class BufferError_(ReproError):
    """A cache-buffer operation is impossible (e.g. item larger than buffer).

    Named with a trailing underscore to avoid shadowing the Python builtin
    :class:`BufferError`.
    """


class RoutingError(ReproError):
    """A routing operation referenced an unknown node or endpoint."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class PathError(ReproError):
    """An opportunistic-path computation was requested between unknown or
    disconnected endpoints where a result is mandatory."""


class KnapsackError(ReproError):
    """Invalid input to the knapsack solver (negative sizes, mismatched
    value/size vectors, non-integral capacities)."""
