"""The generic name → value registry used across the package.

A :class:`Registry` is an *ordered* mapping with decorator registration
and duplicate rejection.  It lives in its own dependency-free module so
that both the scenario layer (schemes, routers, traces — see
:mod:`repro.scenario.registry`) and the workload layer (arrival
processes — see :mod:`repro.workload.arrivals`) can share one
implementation without creating an import cycle between them.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError

__all__ = ["Registry"]

T = TypeVar("T")


class Registry(Generic[T]):
    """An ordered name → value mapping with decorator registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str, value: Optional[T] = None):
        """Register *value* under *name*; usable as a decorator.

        Duplicate names are rejected — silently shadowing a scheme would
        change what every existing scenario file means.
        """
        if name in self._entries:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered"
            )

        def _store(entry: T) -> T:
            self._entries[name] = entry
            return entry

        if value is None:
            return _store
        return _store(value)

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Registry({self.kind}: {list(self._entries)})"
