"""Pluggable compiled-kernel backends for the four hot kernels.

The registry (:mod:`repro.kernels.registry`) maps each hot kernel —
the batched hypoexponential CDF (Eq. 2), the all-pairs weight matrix
(Dijkstra + Eq. 2), the NCL metric (Eq. 3) and the knapsack DP
(Eq. 7) — to an optional compiled override.  The ``python`` backend is
the absence of overrides: the numpy/scipy implementations that live in
the kernels' defining modules, each retained with a ``_reference_*``
oracle.  The ``numba`` backend (:mod:`repro.kernels.numba_backend`)
replaces the pure-arithmetic inner loops with ``@njit``-compiled cores
and is **bitwise identical** to the python backend by construction —
see DESIGN.md "Performance: kernel backends" for the dispatch rules.

Backend selection: ``REPRO_KERNEL_BACKEND`` environment variable, the
``repro --backend`` CLI flag (:func:`set_backend`), or the
:func:`use_backend` context manager in tests and benchmarks.  When
numba is not installed the registry silently degrades to ``python``;
:func:`backend_status` reports both the requested and active backend
and is stamped into provenance manifests.
"""

from repro.kernels.registry import (
    KERNELS,
    available_backend_names,
    backend_status,
    current_backend_name,
    kernel_override,
    set_backend,
    use_backend,
    warmup,
)

__all__ = [
    "KERNELS",
    "available_backend_names",
    "backend_status",
    "current_backend_name",
    "kernel_override",
    "set_backend",
    "use_backend",
    "warmup",
]
