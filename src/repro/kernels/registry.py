"""Kernel-backend registry: ``python`` (oracle) vs ``numba`` (compiled).

Each entry in :data:`KERNELS` names one hot kernel, the module that
defines its python implementation, and the ``_reference_*`` oracle that
pins its semantics (``scripts/check_kernel_backends.py`` lints this
table, so it must stay a plain literal).  A backend is a set of
*overrides*: callables the kernel's defining module consults at its
dispatch point via :func:`kernel_override`.  The python backend is the
empty override set — the existing numpy/scipy code runs unchanged — so
there is no circular import between the registry and the kernel
modules, and disabling numba can never change results.

Kernels marked ``via`` are *derived*: their hot loop is another
registered kernel (``ncl_metrics`` is a numpy reduction over the
``weight_matrix`` kernel), so they have an oracle and equivalence tests
but no backend entry of their own.  Kernels marked ``sparse`` operate
on the CSR/adjacency representation and never allocate N×N; the lint
additionally requires their oracle to be a documented *dense* reference
(the dense path is the ground truth the sparse path is pinned to).  The reduction itself deliberately
stays in shared numpy code on both backends: ``np.sum`` uses pairwise
accumulation, which a sequential compiled loop cannot reproduce
bitwise.

Selection precedence: :func:`set_backend` (CLI ``--backend`` flag or
:func:`use_backend` in tests) wins over the ``REPRO_KERNEL_BACKEND``
environment variable, which wins over the default ``python``.
Requesting ``numba`` when it is not importable silently degrades to
``python`` — numba is an optional extra — and the degradation is
visible in :func:`backend_status` (stamped into provenance manifests).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

__all__ = [
    "KERNELS",
    "ENV_VAR",
    "available_backend_names",
    "backend_status",
    "current_backend_name",
    "kernel_override",
    "set_backend",
    "use_backend",
    "warmup",
]

ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The registered hot kernels.  Plain literal — parsed (not imported)
#: by ``scripts/check_kernel_backends.py``, which enforces that every
#: kernel's ``reference`` oracle exists in ``module`` and is named by
#: an equivalence test, and that the numba backend covers every
#: non-derived kernel.
KERNELS = {
    "hypoexp_cdf_batch": {
        "module": "repro.mathutils.hypoexponential",
        "reference": "_reference_cdf_batch",
        "doc": "Eq. 2 closed-form coefficients C_k over a padded rate batch",
    },
    "weight_matrix": {
        "module": "repro.graph.paths",
        "reference": "_reference_weight_matrix",
        "doc": "all-pairs hop-slot extraction from the Dijkstra predecessor matrix",
    },
    "ncl_metrics": {
        "module": "repro.core.ncl",
        "reference": "_reference_ncl_metrics",
        "via": "weight_matrix",
        "doc": "Eq. 3 metric: numpy reduction over the weight_matrix kernel",
    },
    "knapsack_dp": {
        "module": "repro.core.knapsack",
        "reference": "_reference_knapsack_dp",
        "doc": "Eq. 7 one-dimensional 0/1 knapsack keep-table fill",
    },
    "knn_weight_rows": {
        "module": "repro.graph.sparse",
        "reference": "_reference_knn_weight_rows",
        "sparse": True,
        "doc": "early-stopped sparse Dijkstra + Eq. 2 rows to the k nearest contacts",
    },
    "sparse_ncl_metrics": {
        "module": "repro.core.ncl",
        "reference": "_reference_sparse_ncl_metrics",
        "via": "knn_weight_rows",
        "sparse": True,
        "doc": "Eq. 3 metric over k-NN truncated weight rows (bincount reduction)",
    },
}

_DEFAULT = "python"

#: explicit request (set_backend / use_backend); None = defer to env
_requested: Optional[str] = None
#: resolved state: (active backend name, override table) or None
_resolved: Optional[Tuple[str, Dict[str, Callable]]] = None
#: cached numba availability probe (None = not probed yet)
_numba_overrides: Optional[Dict[str, Callable]] = None
_numba_probed = False


def _probe_numba() -> Optional[Dict[str, Callable]]:
    """Import the numba backend once; None when numba is unavailable."""
    global _numba_overrides, _numba_probed
    if not _numba_probed:
        _numba_probed = True
        try:
            from repro.kernels import numba_backend

            _numba_overrides = numba_backend.build_overrides()
        except ImportError:
            _numba_overrides = None
    return _numba_overrides


def available_backend_names() -> Tuple[str, ...]:
    """Backends that can actually run here (``python`` always can)."""
    names = ("python",)
    if _probe_numba() is not None:
        names = names + ("numba",)
    return names


def requested_backend_name() -> str:
    """What was asked for (before any silent degradation)."""
    if _requested is not None:
        return _requested
    return os.environ.get(ENV_VAR, _DEFAULT) or _DEFAULT


def _resolve() -> Tuple[str, Dict[str, Callable]]:
    global _resolved
    if _resolved is None:
        requested = requested_backend_name()
        if requested == "numba":
            overrides = _probe_numba()
            if overrides is not None:
                _resolved = ("numba", overrides)
            else:
                # numba is an optional extra: degrade silently.
                _resolved = ("python", {})
        else:
            # Unknown names also fall back to python (the oracle), so a
            # typo'd env var cannot take a run down an untested path.
            _resolved = ("python", {})
    return _resolved


def current_backend_name() -> str:
    """The backend actually in effect (after degradation)."""
    return _resolve()[0]


def kernel_override(name: str) -> Optional[Callable]:
    """The active backend's override for kernel *name*, or ``None``.

    ``None`` means "run the python implementation" — the dispatch sites
    in the kernel modules fall through to their existing code.  Cheap
    enough for per-call use: one dict lookup after first resolution.
    """
    return _resolve()[1].get(name)


def set_backend(name: Optional[str]) -> str:
    """Select a backend by name; returns the *active* backend.

    ``None`` clears any explicit request (environment variable applies
    again).  Requesting ``numba`` without numba installed degrades
    silently to ``python`` — check the return value or
    :func:`backend_status` to see what actually took effect.
    """
    global _requested, _resolved
    _requested = name
    _resolved = None
    return current_backend_name()


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[str]:
    """Context manager form of :func:`set_backend` (tests, benchmarks)."""
    global _requested, _resolved
    previous = _requested
    active = set_backend(name)
    try:
        yield active
    finally:
        _requested = previous
        _resolved = None


def backend_status() -> Dict[str, object]:
    """Provenance-ready snapshot of the backend selection.

    ``requested`` is what the env var / CLI asked for, ``active`` what
    is actually running (they differ exactly when the request silently
    degraded), ``available`` what this interpreter could run.
    """
    return {
        "requested": requested_backend_name(),
        "active": current_backend_name(),
        "available": list(available_backend_names()),
    }


def warmup() -> None:
    """Trigger JIT compilation of every active compiled kernel.

    Benchmarks call this once before timing so measured rounds exclude
    the one-off compile cost; a no-op on the python backend.
    """
    name, overrides = _resolve()
    if name == "numba" and overrides:
        from repro.kernels import numba_backend

        numba_backend.warmup()
