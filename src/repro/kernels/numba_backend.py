"""``@njit``-compiled overrides for the registered kernels.

Importing this module requires numba (an optional extra); the registry
probes the import once and silently stays on the python backend when it
fails.  Every core here is **bitwise identical** to the python
implementation it overrides, which constrains what may be compiled:

* only pure IEEE-754 arithmetic (+, −, ×, ÷, comparisons) in the same
  evaluation order as the numpy code — ``np.prod`` reduces strictly
  sequentially, so the Eq. 2 coefficient product may be a loop, but
  ``np.sum`` is pairwise for n > 8 and ``np.expm1``/``np.exp`` differ
  in the last ulp from ``math.expm1``/``math.exp``, so every
  transcendental and every sum reduction stays in shared numpy code at
  the dispatch sites;
* no re-implementation of scipy's Dijkstra: synthetic-trace rates k/T
  produce exact float cost ties whose different shortest-path trees
  carry different rate multisets, so both backends read the same scipy
  predecessor matrix and only the hop-slot extraction is compiled.

The equivalence is pinned bit-for-bit by
``tests/properties/test_backend_equivalence.py``.

The knapsack wrapper reuses module-level DP scratch buffers across
calls (the batched-replacement path solves many small knapsacks per
exchange); the returned keep table is a view into that scratch and is
only valid until the next call — callers consume it immediately.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["build_overrides", "warmup"]

#: must match repro.mathutils.hypoexponential._DISTINCT_RTOL
_DISTINCT_RTOL = 1e-6


# --- Eq. 2 closed-form coefficients --------------------------------------


@njit(cache=True)
def _coeffs_core(rates, mask):  # pragma: no cover - compiled
    n_rows, width = rates.shape
    coeff = np.empty((n_rows, width))
    separated = np.empty(n_rows, np.bool_)
    scratch = np.empty(width)
    for i in range(n_rows):
        # C[i, k] = prod_{s != k, valid} rate_s / (rate_s - rate_k); the
        # factor order matches np.prod's sequential reduction, and the
        # skipped factors are exactly the entries numpy overwrites with
        # the multiplicative identity 1.0.
        for k in range(width):
            if not mask[i, k]:
                coeff[i, k] = 1.0
                continue
            c = 1.0
            for s in range(width):
                if s == k or not mask[i, s]:
                    continue
                c *= rates[i, s] / (rates[i, s] - rates[i, k])
            coeff[i, k] = c
        # Row-wise _batch_rows_well_separated: sort the valid rates and
        # require every adjacent gap to exceed _DISTINCT_RTOL * hi.
        m = 0
        for k in range(width):
            if mask[i, k]:
                scratch[m] = rates[i, k]
                m += 1
        for a in range(1, m):  # insertion sort (tiny m)
            v = scratch[a]
            b = a - 1
            while b >= 0 and scratch[b] > v:
                scratch[b + 1] = scratch[b]
                b -= 1
            scratch[b + 1] = v
        ok = True
        for a in range(1, m):
            if not (scratch[a] - scratch[a - 1] > _DISTINCT_RTOL * scratch[a]):
                ok = False
                break
        separated[i] = ok
    return coeff, separated


def hypoexp_coeffs(rates: np.ndarray, mask: np.ndarray):
    """Override for the ``hypoexp_cdf_batch`` coefficient stage."""
    return _coeffs_core(
        np.ascontiguousarray(rates), np.ascontiguousarray(mask)
    )


# --- all-pairs hop-slot extraction ---------------------------------------


@njit(cache=True)
def _hop_slots_core(rates, pred, ii, jj):  # pragma: no cover - compiled
    m = ii.shape[0]
    max_hops = 1
    for p in range(m):
        src = ii[p]
        cur = jj[p]
        hops = 0
        while cur != src:
            cur = pred[src, cur]
            hops += 1
        if hops > max_hops:
            max_hops = hops
    padded = np.zeros((m, max_hops))
    for p in range(m):
        src = ii[p]
        cur = jj[p]
        slot = max_hops - 1
        # Fill from the rightmost slot while walking destination ->
        # source, so each row reads source -> destination with leading
        # zero padding — the same layout as the python column-stack
        # after its column reversal (hop order moves the ill-conditioned
        # closed form at the 1e-8 level, so it must match the oracle's).
        while cur != src:
            prev = pred[src, cur]
            padded[p, slot] = rates[prev, cur]
            slot -= 1
            cur = prev
    return padded


def weight_matrix_hops(
    rates: np.ndarray, pred: np.ndarray, ii: np.ndarray, jj: np.ndarray
) -> np.ndarray:
    """Override for the ``weight_matrix`` hop-slot extraction stage."""
    if ii.shape[0] == 0:
        return np.zeros((0, 1))
    return _hop_slots_core(
        np.ascontiguousarray(rates),
        np.ascontiguousarray(pred),
        np.ascontiguousarray(ii),
        np.ascontiguousarray(jj),
    )


# --- k-NN early-stopped sparse Dijkstra -----------------------------------


@njit(cache=True)
def _knn_rows_njit(indptr, indices, data, sources, k):  # pragma: no cover
    m = sources.shape[0]
    n = indptr.shape[0] - 1
    dest = np.full(m * k, -1, dtype=np.int64)
    hop_rows = np.zeros((m * k, k))
    counts = np.zeros(m, dtype=np.int64)
    # Per-node labels are version-stamped instead of cleared, so the
    # per-source reset is O(1) rather than O(N).
    dist = np.zeros(n)
    labeled = np.zeros(n, dtype=np.int64)
    settled = np.zeros(n, dtype=np.int64)
    pred = np.zeros(n, dtype=np.int64)
    pred_rate = np.zeros(n)
    # Binary heap keyed on the lexicographic pair (dist, node).  Every
    # entry's key is distinct — a node is re-pushed only on a strict
    # distance improvement — so the pop sequence is exactly the sorted
    # key order that python's heapq produces: settle order and
    # predecessors match the python core bitwise.
    capacity = data.shape[0] + 1
    heap_d = np.zeros(capacity)
    heap_n = np.zeros(capacity, dtype=np.int64)
    for t in range(m):
        s = sources[t]
        version = t + 1
        labeled[s] = version
        dist[s] = 0.0
        heap_d[0] = 0.0
        heap_n[0] = s
        size = 1
        base = t * k
        found = 0
        while size > 0 and found < k:
            d = heap_d[0]
            node = heap_n[0]
            size -= 1
            heap_d[0] = heap_d[size]
            heap_n[0] = heap_n[size]
            i = 0
            while True:
                left = 2 * i + 1
                right = left + 1
                best = i
                if left < size and (
                    heap_d[left] < heap_d[best]
                    or (heap_d[left] == heap_d[best] and heap_n[left] < heap_n[best])
                ):
                    best = left
                if right < size and (
                    heap_d[right] < heap_d[best]
                    or (heap_d[right] == heap_d[best] and heap_n[right] < heap_n[best])
                ):
                    best = right
                if best == i:
                    break
                heap_d[i], heap_d[best] = heap_d[best], heap_d[i]
                heap_n[i], heap_n[best] = heap_n[best], heap_n[i]
                i = best
            if settled[node] == version:
                continue
            settled[node] = version
            if node != s:
                row = base + found
                dest[row] = node
                hops = 0
                cur = node
                while cur != s:
                    hops += 1
                    cur = pred[cur]
                cur = node
                slot = hops - 1
                while cur != s:
                    hop_rows[row, slot] = pred_rate[cur]
                    slot -= 1
                    cur = pred[cur]
                found += 1
                if found == k:
                    break
            for e in range(indptr[node], indptr[node + 1]):
                nb = indices[e]
                if settled[nb] == version:
                    continue
                candidate = d + 1.0 / data[e]
                if labeled[nb] != version or candidate < dist[nb]:
                    dist[nb] = candidate
                    labeled[nb] = version
                    pred[nb] = node
                    pred_rate[nb] = data[e]
                    heap_d[size] = candidate
                    heap_n[size] = nb
                    size += 1
                    i = size - 1
                    while i > 0:
                        parent = (i - 1) // 2
                        if heap_d[i] < heap_d[parent] or (
                            heap_d[i] == heap_d[parent]
                            and heap_n[i] < heap_n[parent]
                        ):
                            heap_d[i], heap_d[parent] = heap_d[parent], heap_d[i]
                            heap_n[i], heap_n[parent] = heap_n[parent], heap_n[i]
                            i = parent
                        else:
                            break
        counts[t] = found
    return dest, hop_rows, counts


def knn_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    sources: np.ndarray,
    k: int,
):
    """Override for the ``knn_weight_rows`` per-source Dijkstra stage."""
    return _knn_rows_njit(
        np.ascontiguousarray(indptr),
        np.ascontiguousarray(indices),
        np.ascontiguousarray(data),
        np.ascontiguousarray(sources),
        k,
    )


# --- Eq. 7 knapsack DP ----------------------------------------------------


@njit(cache=True)
def _knapsack_core(values, sizes, cap_units, best, keep):  # pragma: no cover
    n = values.shape[0]
    for i in range(n):
        size = sizes[i]
        value = values[i]
        for w in range(cap_units, size - 1, -1):
            candidate = best[w - size] + value
            if candidate > best[w]:
                best[w] = candidate
                keep[i, w] = True
    return best[cap_units]


_dp_best = np.zeros(0)
_dp_keep = np.zeros((0, 0), dtype=np.bool_)


def knapsack_dp(values: np.ndarray, sizes: np.ndarray, cap_units: int) -> np.ndarray:
    """Override for the ``knapsack_dp`` keep-table fill.

    Returns the boolean keep table (rows = items, columns = capacity
    units).  The table lives in reused scratch: valid until the next
    call.
    """
    global _dp_best, _dp_keep
    n = values.shape[0]
    width = cap_units + 1
    if _dp_best.shape[0] < width:
        _dp_best = np.zeros(width)
    if _dp_keep.shape[0] < n or _dp_keep.shape[1] < width:
        _dp_keep = np.zeros(
            (max(n, _dp_keep.shape[0]), max(width, _dp_keep.shape[1])),
            dtype=np.bool_,
        )
    best = _dp_best[:width]
    keep = _dp_keep[:n, :width]
    best[:] = 0.0
    keep[:] = False
    _knapsack_core(
        np.ascontiguousarray(values),
        np.ascontiguousarray(sizes),
        cap_units,
        best,
        keep,
    )
    return keep


# --- registry hooks -------------------------------------------------------


def build_overrides():
    """Kernel name -> override callable (keys linted against KERNELS)."""
    return {
        "hypoexp_cdf_batch": hypoexp_coeffs,
        "weight_matrix": weight_matrix_hops,
        "knapsack_dp": knapsack_dp,
        "knn_weight_rows": knn_rows,
    }


def warmup() -> None:
    """Compile every core on tiny inputs (JIT cost paid here, once)."""
    hypoexp_coeffs(
        np.array([[1.0, 2.0]]), np.array([[True, True]])
    )
    weight_matrix_hops(
        np.array([[0.0, 1.0], [1.0, 0.0]]),
        np.array([[-9999, 0], [1, -9999]], dtype=np.int32),
        np.array([0]),
        np.array([1]),
    )
    knapsack_dp(np.array([1.0]), np.array([1], dtype=np.int64), 2)
    knn_rows(
        np.array([0, 1, 2], dtype=np.int64),
        np.array([1, 0], dtype=np.int64),
        np.array([1.0, 1.0]),
        np.array([0], dtype=np.int64),
        1,
    )
