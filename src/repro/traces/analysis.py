"""Inter-contact time analysis: validating the paper's network model.

The whole analytical machinery of Sec. IV rests on the assumption that
pairwise inter-contact times are exponentially distributed (Sec. III-B,
citing the characterisation debate of [2], [5], [18]).  This module
provides the tools to check that assumption on any trace — real or
synthetic:

* :func:`pair_intercontact_samples` — the raw inter-contact gaps of one
  node pair;
* :func:`fit_exponential` — the MLE exponential fit with a
  Kolmogorov–Smirnov distance as goodness-of-fit;
* :func:`aggregate_intercontact_ccdf` — the network-wide CCDF on a log
  grid (the classic "power law with exponential tail" plot of the
  inter-contact literature);
* :func:`exponential_fit_report` — per-pair fit quality across the whole
  trace, summarised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mathutils.ks import exponential_ks
from repro.traces.contact import ContactTrace

__all__ = [
    "pair_intercontact_samples",
    "ExponentialFit",
    "fit_exponential",
    "aggregate_intercontact_ccdf",
    "FitReport",
    "exponential_fit_report",
]


def pair_intercontact_samples(
    trace: ContactTrace, node_a: int, node_b: int
) -> List[float]:
    """Inter-contact gaps of one pair: start-of-next minus end-of-previous.

    Overlapping or touching sightings contribute no gap.
    """
    pair = (min(node_a, node_b), max(node_a, node_b))
    meetings = sorted(
        (c.start, c.end) for c in trace if c.pair == pair
    )
    gaps: List[float] = []
    for (_, prev_end), (next_start, _) in zip(meetings, meetings[1:]):
        gap = next_start - prev_end
        if gap > 0.0:
            gaps.append(gap)
    return gaps


@dataclass(frozen=True)
class ExponentialFit:
    """MLE exponential fit of a sample plus a KS goodness measure."""

    rate: float                  # λ̂ = 1 / mean
    sample_size: int
    ks_distance: float           # sup |F_empirical - F_exponential|

    @property
    def mean_intercontact(self) -> float:
        return 1.0 / self.rate if self.rate > 0 else float("inf")

    def is_plausible(self, threshold: float = 0.2) -> bool:
        """Loose plausibility check: KS distance below *threshold*.

        The paper's model needs the exponential to be a workable
        approximation, not to pass a strict hypothesis test.
        """
        return self.ks_distance <= threshold


def fit_exponential(samples: Sequence[float]) -> Optional[ExponentialFit]:
    """Fit Exp(λ) by maximum likelihood; ``None`` for fewer than 2 gaps."""
    samples = np.asarray([s for s in samples if s > 0], dtype=float)
    if samples.size < 2:
        return None
    rate = 1.0 / samples.mean()
    ks = exponential_ks(samples, rate)
    return ExponentialFit(rate=rate, sample_size=int(samples.size), ks_distance=ks)


def aggregate_intercontact_ccdf(
    trace: ContactTrace,
    num_points: int = 50,
    min_gap: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Network-wide inter-contact CCDF on a log-spaced grid.

    Returns ``(grid, ccdf)`` where ``ccdf[i]`` is the fraction of all
    pairwise inter-contact gaps exceeding ``grid[i]``.
    """
    all_gaps: List[float] = []
    seen_pairs = set()
    for contact in trace:
        if contact.pair in seen_pairs:
            continue
        seen_pairs.add(contact.pair)
        all_gaps.extend(pair_intercontact_samples(trace, *contact.pair))
    if not all_gaps:
        return np.array([]), np.array([])
    gaps = np.sort(np.asarray(all_gaps))
    lo = max(min_gap, float(gaps[0]))
    hi = float(gaps[-1])
    if hi <= lo:
        hi = lo * 10.0
    grid = np.logspace(math.log10(lo), math.log10(hi), num_points)
    ccdf = np.array([(gaps > g).mean() for g in grid])
    return grid, ccdf


@dataclass(frozen=True)
class FitReport:
    """Summary of exponential-fit quality across a trace's node pairs."""

    pairs_fitted: int
    pairs_skipped: int            # too few gaps to fit
    median_ks: float
    fraction_plausible: float     # KS <= 0.2
    rate_range: Tuple[float, float]

    def as_row(self) -> Dict[str, object]:
        return {
            "pairs_fitted": self.pairs_fitted,
            "pairs_skipped": self.pairs_skipped,
            "median_ks": round(self.median_ks, 3),
            "plausible_frac": round(self.fraction_plausible, 3),
            "rate_min_per_day": round(self.rate_range[0] * 86400, 4),
            "rate_max_per_day": round(self.rate_range[1] * 86400, 2),
        }


def exponential_fit_report(trace: ContactTrace, min_samples: int = 5) -> FitReport:
    """Fit every pair with at least *min_samples* gaps; summarise."""
    fits: List[ExponentialFit] = []
    skipped = 0
    for pair in trace.pair_contact_counts():
        gaps = pair_intercontact_samples(trace, *pair)
        if len(gaps) < min_samples:
            skipped += 1
            continue
        fit = fit_exponential(gaps)
        if fit is None:
            skipped += 1
            continue
        fits.append(fit)
    if not fits:
        return FitReport(0, skipped, float("nan"), 0.0, (0.0, 0.0))
    ks_values = np.array([f.ks_distance for f in fits])
    rates = np.array([f.rate for f in fits])
    return FitReport(
        pairs_fitted=len(fits),
        pairs_skipped=skipped,
        median_ks=float(np.median(ks_values)),
        fraction_plausible=float(np.mean([f.is_plausible() for f in fits])),
        rate_range=(float(rates.min()), float(rates.max())),
    )
