"""Synthetic CRAWDAD-like contact-trace generation.

The paper's results are driven by two properties of its traces:

1. the **first-order contact statistics** of Table I (node count, trace
   duration, total number of contacts, sampling granularity), and
2. the **heterogeneity of node popularity** (Sec. IV-B, Fig. 4): a few
   hub nodes contact many others, producing a highly skewed NCL-metric
   distribution — the property that makes intentional NCL caching work.

This generator reproduces both.  Each node *i* receives a heavy-tailed
activity weight ``a_i`` (Pareto); the pairwise contact process of nodes
``(i, j)`` is Poisson with rate ``λ_ij ∝ a_i · a_j``, scaled so that the
expected total number of contacts matches the target.  Contact *counts*
per pair are drawn from the Poisson law and contact start times uniformly
over the trace duration — an exact sampling of a homogeneous Poisson
process, matching the exponential inter-contact model of Sec. III-B.

Contact durations are exponential with a configurable mean (a small
multiple of the collection granularity), which feeds the per-contact
transfer budget (2.1 Mb/s × duration) in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedSequenceFactory
from repro.traces.contact import Contact, ContactTrace

__all__ = ["SyntheticTraceConfig", "generate_synthetic_trace"]


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of a synthetic trace.

    Attributes
    ----------
    name:
        Trace name carried into reports.
    num_nodes:
        Number of devices.
    duration:
        Trace duration in seconds.
    total_contacts:
        Expected total number of pairwise contacts over the duration.
    granularity:
        Sampling period of the emulated collection, in seconds.
    mean_contact_duration:
        Mean of the exponential contact-duration law (seconds).  Defaults
        to ``2.5 × granularity`` when left ``None``.
    activity_sigma:
        σ of the lognormal per-node activity law (mean normalised to 1).
        σ = 1 puts the 99th-percentile node at roughly 10× the median —
        the "up to tenfold" popularity skew the paper validates in
        Fig. 4 — while avoiding degenerate super-hubs that would absorb
        the whole contact budget.
    num_communities / community_bias:
        Community structure: nodes are assigned (uniformly at random) to
        ``num_communities`` groups and same-group pair intensities are
        multiplied by ``community_bias``.  Real traces (labs on a campus,
        interest groups at a conference) have several distinct hub
        regions — the reason the paper deploys K separate NCLs rather
        than one; without communities every opportunistic path funnels
        through a single global hub.
    seed:
        Root seed for reproducible generation.
    """

    name: str
    num_nodes: int
    duration: float
    total_contacts: int
    granularity: float
    mean_contact_duration: Optional[float] = None
    activity_sigma: float = 1.0
    num_communities: int = 1
    community_bias: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ConfigurationError("a trace needs at least two nodes")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.total_contacts < 1:
            raise ConfigurationError("total_contacts must be >= 1")
        if self.granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        if self.activity_sigma <= 0:
            raise ConfigurationError("activity_sigma must be positive")
        if self.num_communities < 1:
            raise ConfigurationError("num_communities must be >= 1")
        if self.community_bias < 1.0:
            raise ConfigurationError("community_bias must be >= 1")
        if self.mean_contact_duration is not None and self.mean_contact_duration <= 0:
            raise ConfigurationError("mean_contact_duration must be positive")

    @property
    def effective_mean_contact_duration(self) -> float:
        if self.mean_contact_duration is not None:
            return self.mean_contact_duration
        return 2.5 * self.granularity

    def scaled(self, node_factor: float = 1.0, time_factor: float = 1.0) -> "SyntheticTraceConfig":
        """A proportionally scaled-down (or up) configuration.

        Used by the benchmark harness to run the paper's experiments at a
        fraction of the full trace size while preserving per-pair contact
        density: total contacts scale with ``node_factor² × time_factor``.
        """
        if node_factor <= 0 or time_factor <= 0:
            raise ConfigurationError("scale factors must be positive")
        num_nodes = max(2, int(round(self.num_nodes * node_factor)))
        pair_scale = (num_nodes * (num_nodes - 1)) / (self.num_nodes * (self.num_nodes - 1))
        return replace(
            self,
            name=f"{self.name}-x{node_factor:g}/{time_factor:g}",
            num_nodes=num_nodes,
            duration=self.duration * time_factor,
            total_contacts=max(1, int(round(self.total_contacts * pair_scale * time_factor))),
        )


def _activity_weights(config: SyntheticTraceConfig, rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed per-node activity weights, normalised to mean 1.

    Lognormal with unit mean: hubs are roughly an order of magnitude more
    active than the median node (at the default σ = 1), matching the
    skew the paper validates on its traces, while the thin upper tail
    prevents one node pair from absorbing the whole contact budget.
    """
    sigma = config.activity_sigma
    weights = rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma, size=config.num_nodes)
    return weights / weights.mean()


def generate_synthetic_trace(config: SyntheticTraceConfig) -> ContactTrace:
    """Generate a seeded synthetic :class:`ContactTrace` from *config*.

    Determinism: the same configuration (including seed) always yields an
    identical trace.
    """
    factory = SeedSequenceFactory(config.seed)
    rng_weights = factory.generator("trace", config.name, "weights")
    rng_counts = factory.generator("trace", config.name, "counts")
    rng_times = factory.generator("trace", config.name, "times")

    weights = _activity_weights(config, rng_weights)
    n = config.num_nodes
    communities = rng_weights.integers(0, config.num_communities, size=n)

    # Pairwise intensity matrix u_ij = a_i * a_j over canonical pairs,
    # boosted for same-community pairs.
    idx_a, idx_b = np.triu_indices(n, k=1)
    pair_intensity = weights[idx_a] * weights[idx_b]
    if config.num_communities > 1:
        same = communities[idx_a] == communities[idx_b]
        pair_intensity = pair_intensity * np.where(same, config.community_bias, 1.0)
    scale = config.total_contacts / pair_intensity.sum()
    expected_counts = pair_intensity * scale

    counts = rng_counts.poisson(expected_counts)
    contacts: List[Contact] = []
    mean_duration = config.effective_mean_contact_duration
    for a, b, count in zip(idx_a, idx_b, counts):
        if count == 0:
            continue
        starts = rng_times.uniform(0.0, config.duration, size=count)
        durations = np.maximum(
            config.granularity,
            rng_times.exponential(mean_duration, size=count),
        )
        for start, duration in zip(starts, durations):
            end = min(start + duration, config.duration)
            contacts.append(Contact(float(start), float(end), int(a), int(b)))

    return ContactTrace(
        contacts,
        num_nodes=n,
        granularity=config.granularity,
        name=config.name,
    )
