"""Bounded-memory contact streams (scale-out trace layer).

:class:`~repro.traces.contact.ContactTrace` materialises every contact
as a python object up front — fine for the paper's Table I traces
(tens of thousands of contacts), fatal at 10⁵ nodes where a trace holds
millions.  A :class:`ContactStream` is the lazy counterpart: declared
metadata (node count, time extent) plus a replayable, time-sorted
iterator of :class:`~repro.traces.contact.Contact` records.  The
simulator feeds itself one contact ahead from the stream, so peak
memory is one in-flight contact regardless of trace length, and the
event order — hence every result — is identical to the materialised
path (contacts arrive in the same sorted order with the same relative
sequence numbers; see ``Simulator._warmup``).

``materialize()`` is the explicit escape hatch back to a
:class:`ContactTrace` for consumers that genuinely need random access
(serve-mode replay, Table I reporting).  It is deliberately a method
call, not an implicit conversion, so an accidental O(contacts)
materialisation cannot hide in an innocent-looking expression.

:class:`StreamingTrace` adapts any replayable iterator factory and lazily
validates the stream contract (sorted starts, node ids in range) as
contacts flow; :func:`stream_synthetic_contacts` generates the sparse
large-scale synthetic workload window by window without ever holding
more than one window of contacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError, TraceConsistencyError
from repro.rng import SeedSequenceFactory
from repro.traces.contact import Contact, ContactTrace

__all__ = [
    "ContactStream",
    "StreamingTrace",
    "SparseSyntheticConfig",
    "stream_synthetic_contacts",
]


@runtime_checkable
class ContactStream(Protocol):
    """Time-sorted, replayable, bounded-memory source of contacts.

    Both :class:`ContactTrace` and :class:`StreamingTrace` satisfy this
    protocol; code that only replays (the simulator's main path) should
    accept it rather than the concrete trace class.
    """

    @property
    def name(self) -> str: ...

    @property
    def num_nodes(self) -> int: ...

    @property
    def granularity(self) -> float: ...

    @property
    def start_time(self) -> float: ...

    @property
    def end_time(self) -> float: ...

    def __iter__(self) -> Iterator[Contact]: ...

    def materialize(self) -> ContactTrace: ...


@dataclass(frozen=True)
class StreamingTrace:
    """A :class:`ContactStream` over a replayable iterator factory.

    ``factory`` must return a *fresh* iterator on every call (each
    simulator phase re-iterates from the start); generators themselves
    are single-shot, so pass the generator *function*, not a generator
    object.  Contacts must be yielded sorted by
    ``(start, end, node_a, node_b)`` — the iteration wrapper enforces
    non-decreasing start times and in-range node ids lazily, failing at
    the offending contact instead of pre-scanning.
    """

    name: str
    num_nodes: int
    start_time: float
    end_time: float
    factory: Callable[[], Iterable[Contact]]
    granularity: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("a stream needs at least one node")
        if self.end_time < self.start_time:
            raise ConfigurationError("stream ends before it starts")

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def __iter__(self) -> Iterator[Contact]:
        previous = float("-inf")
        for contact in self.factory():
            if contact.start < previous:
                raise TraceConsistencyError(
                    f"stream {self.name!r} is not time-sorted: contact at "
                    f"{contact.start} after {previous}"
                )
            if contact.node_b >= self.num_nodes:
                raise TraceConsistencyError(
                    f"stream {self.name!r} references node {contact.node_b} "
                    f">= num_nodes {self.num_nodes}"
                )
            previous = contact.start
            yield contact

    def materialize(self) -> ContactTrace:
        """Collect the full stream into a :class:`ContactTrace`.

        O(contacts) memory — the one thing streams exist to avoid — so
        callers must opt in explicitly.
        """
        return ContactTrace(
            list(self),
            num_nodes=self.num_nodes,
            granularity=self.granularity,
            name=self.name,
            # Carry the declared window: rate estimation divides by the
            # trace extent, so deriving it from the contacts instead
            # would silently shift every λ versus the streamed run.
            start_time=self.start_time,
            end_time=self.end_time,
        )


# --- sparse large-scale synthetic stream ----------------------------------


@dataclass(frozen=True)
class SparseSyntheticConfig:
    """Sparse-topology synthetic workload for 10⁵-node runs.

    The dense generator draws a rate for all N(N−1)/2 pairs — quadratic
    work and memory that caps it near a few thousand nodes.  Here the
    contact topology is an explicit sparse graph: each node meets its
    ``ring_neighbors`` nearest ring neighbours (locality: labs, homes)
    plus ``shortcut_neighbors`` random long-range acquaintances, for an
    expected degree of ``ring_neighbors + 2·shortcut_neighbors``; edge
    count, and hence memory, is O(N · degree).  Per-edge Poisson contact
    processes then scale so the expected contact total matches
    ``total_contacts``, exactly like the dense generator.

    Attributes mirror :class:`~repro.traces.synthetic.SyntheticTraceConfig`
    where they overlap; ``window`` is the generation slice in seconds —
    contacts are drawn and sorted one window at a time, bounding live
    memory to one window's contacts plus the O(E) edge arrays.
    """

    name: str
    num_nodes: int
    duration: float
    total_contacts: int
    granularity: float
    ring_neighbors: int = 8
    shortcut_neighbors: int = 4
    mean_contact_duration: Optional[float] = None
    activity_sigma: float = 1.0
    window: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 3:
            raise ConfigurationError("sparse stream needs at least three nodes")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.total_contacts < 1:
            raise ConfigurationError("total_contacts must be >= 1")
        if self.granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        if self.ring_neighbors < 2 or self.ring_neighbors % 2:
            raise ConfigurationError("ring_neighbors must be even and >= 2")
        if self.shortcut_neighbors < 0:
            raise ConfigurationError("shortcut_neighbors must be >= 0")
        if self.activity_sigma <= 0:
            raise ConfigurationError("activity_sigma must be positive")
        if self.window is not None and self.window <= 0:
            raise ConfigurationError("window must be positive")
        if self.mean_contact_duration is not None and self.mean_contact_duration <= 0:
            raise ConfigurationError("mean_contact_duration must be positive")

    @property
    def effective_mean_contact_duration(self) -> float:
        if self.mean_contact_duration is not None:
            return self.mean_contact_duration
        return 2.5 * self.granularity

    @property
    def effective_window(self) -> float:
        """Default window: 1/64 of the trace (≥ one granularity tick)."""
        if self.window is not None:
            return self.window
        return max(self.duration / 64.0, self.granularity)


def _sparse_edges(config: SparseSyntheticConfig, rng: np.random.Generator):
    """Canonical (a, b, intensity) edge arrays of the sparse topology.

    Ring edges connect each node to its ``ring_neighbors/2`` successors;
    shortcuts are drawn uniformly (duplicates collapse — a repeat draw
    just leaves the edge count slightly below nominal).  Intensities are
    activity-weight products, like the dense generator's pair law.
    """
    n = config.num_nodes
    sigma = config.activity_sigma
    weights = rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma, size=n)
    weights /= weights.mean()

    half = config.ring_neighbors // 2
    ring_a = np.repeat(np.arange(n, dtype=np.int64), half)
    ring_b = (ring_a + np.tile(np.arange(1, half + 1, dtype=np.int64), n)) % n
    pairs = {(min(int(a), int(b)), max(int(a), int(b))) for a, b in zip(ring_a, ring_b)}
    if config.shortcut_neighbors:
        src = np.repeat(np.arange(n, dtype=np.int64), config.shortcut_neighbors)
        dst = rng.integers(0, n, size=len(src), dtype=np.int64)
        for a, b in zip(src, dst):
            if a != b:
                pairs.add((min(int(a), int(b)), max(int(a), int(b))))
    edge_a = np.fromiter((p[0] for p in sorted(pairs)), dtype=np.int64, count=len(pairs))
    edge_b = np.fromiter((p[1] for p in sorted(pairs)), dtype=np.int64, count=len(pairs))
    intensity = weights[edge_a] * weights[edge_b]
    return edge_a, edge_b, intensity


def stream_synthetic_contacts(config: SparseSyntheticConfig) -> StreamingTrace:
    """Windowed bounded-memory stream of the sparse synthetic workload.

    Deterministic and replayable: the topology comes from one named RNG
    stream and every window draws from its own window-indexed stream, so
    re-iteration (or a resumed run) regenerates identical contacts
    without storing any.
    """
    factory = SeedSequenceFactory(config.seed)
    edge_a, edge_b, intensity = _sparse_edges(
        config, factory.generator("trace", config.name, "topology")
    )
    # Per-edge Poisson rate (contacts/second), scaled to the target total.
    edge_rate = intensity * (
        config.total_contacts / (intensity.sum() * config.duration)
    )
    window = config.effective_window
    num_windows = int(np.ceil(config.duration / window))
    mean_duration = config.effective_mean_contact_duration

    def generate() -> Iterator[Contact]:
        for w in range(num_windows):
            w_start = w * window
            w_end = min(w_start + window, config.duration)
            span = w_end - w_start
            if span <= 0:
                continue
            rng = factory.generator("trace", config.name, "window", str(w))
            counts = rng.poisson(edge_rate * span)
            hot = np.nonzero(counts)[0]
            if not len(hot):
                continue
            total = int(counts[hot].sum())
            starts = w_start + rng.uniform(0.0, span, size=total)
            durations = np.maximum(
                config.granularity, rng.exponential(mean_duration, size=total)
            )
            ends = np.minimum(starts + durations, config.duration)
            a = np.repeat(edge_a[hot], counts[hot])
            b = np.repeat(edge_b[hot], counts[hot])
            order = np.lexsort((b, a, ends, starts))
            for p in order:
                yield Contact(
                    float(starts[p]), float(ends[p]), int(a[p]), int(b[p])
                )

    return StreamingTrace(
        name=config.name,
        num_nodes=config.num_nodes,
        start_time=0.0,
        end_time=config.duration,
        factory=generate,
        granularity=config.granularity,
    )
