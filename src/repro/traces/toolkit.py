"""Trace manipulation toolkit.

Utilities a practitioner needs when preparing contact traces for
experiments: restricting to a node subset (e.g. the participants who
carried devices for the whole study), merging traces collected in
parallel, shifting time origins, thinning contacts for sensitivity
studies, and splitting along time.  All operations return new
:class:`ContactTrace` objects; traces are immutable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, TraceConsistencyError
from repro.rng import SeedSequenceFactory
from repro.traces.contact import Contact, ContactTrace

__all__ = [
    "filter_nodes",
    "merge_traces",
    "shift_time",
    "thin_contacts",
    "most_active_nodes",
]


def filter_nodes(
    trace: ContactTrace,
    keep: Iterable[int],
    name: Optional[str] = None,
) -> ContactTrace:
    """Restrict a trace to the nodes in *keep* (ids are remapped to a
    contiguous 0..K-1 range, preserving relative order)."""
    kept = sorted(set(keep))
    if len(kept) < 2:
        raise ConfigurationError("need at least two surviving nodes")
    for node in kept:
        if not 0 <= node < trace.num_nodes:
            raise ConfigurationError(f"node {node} not in trace of {trace.num_nodes}")
    remap: Dict[int, int] = {orig: new for new, orig in enumerate(kept)}
    contacts = [
        Contact(c.start, c.end, remap[c.node_a], remap[c.node_b])
        for c in trace
        if c.node_a in remap and c.node_b in remap
    ]
    return ContactTrace(
        contacts,
        num_nodes=len(kept),
        granularity=trace.granularity,
        name=name or f"{trace.name}:filtered",
    )


def most_active_nodes(trace: ContactTrace, count: int) -> List[int]:
    """The *count* nodes participating in the most contacts."""
    if not 1 <= count <= trace.num_nodes:
        raise ConfigurationError(
            f"count must be in [1, {trace.num_nodes}], got {count}"
        )
    participation = np.zeros(trace.num_nodes)
    for contact in trace:
        participation[contact.node_a] += 1
        participation[contact.node_b] += 1
    order = sorted(range(trace.num_nodes), key=lambda n: (-participation[n], n))
    return order[:count]


def shift_time(trace: ContactTrace, offset: float, name: Optional[str] = None) -> ContactTrace:
    """Translate all contacts by *offset* seconds (must stay >= 0)."""
    if trace.num_contacts and trace.start_time + offset < 0:
        raise TraceConsistencyError("shift would move contacts before t=0")
    contacts = [
        Contact(c.start + offset, c.end + offset, c.node_a, c.node_b) for c in trace
    ]
    return ContactTrace(
        contacts,
        num_nodes=trace.num_nodes,
        granularity=trace.granularity,
        name=name or f"{trace.name}:shifted",
    )


def merge_traces(
    traces: Sequence[ContactTrace],
    name: str = "merged",
) -> ContactTrace:
    """Union several traces over a *shared node universe*.

    All traces must declare the same ``num_nodes`` (they describe the
    same population, e.g. Bluetooth and WiFi sightings of one study);
    contacts are pooled and re-sorted.
    """
    if not traces:
        raise ConfigurationError("nothing to merge")
    num_nodes = traces[0].num_nodes
    for trace in traces[1:]:
        if trace.num_nodes != num_nodes:
            raise ConfigurationError(
                "merge requires a shared node universe "
                f"({trace.num_nodes} != {num_nodes})"
            )
    contacts: List[Contact] = []
    for trace in traces:
        contacts.extend(trace.contacts)
    granularity = min(t.granularity for t in traces if t.granularity > 0.0) if any(
        t.granularity > 0.0 for t in traces
    ) else 0.0
    return ContactTrace(
        contacts, num_nodes=num_nodes, granularity=granularity, name=name
    )


def thin_contacts(
    trace: ContactTrace,
    keep_fraction: float,
    seed: int = 0,
    name: Optional[str] = None,
) -> ContactTrace:
    """Keep each contact independently with probability *keep_fraction*.

    A sensitivity tool: how do results change when the device duty
    cycle halves?  Deterministic per seed.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ConfigurationError("keep_fraction must be in (0, 1]")
    rng = SeedSequenceFactory(seed).generator("thin", trace.name)
    draws = rng.random(trace.num_contacts)
    contacts = [c for c, u in zip(trace.contacts, draws) if u < keep_fraction]
    return ContactTrace(
        contacts,
        num_nodes=trace.num_nodes,
        granularity=trace.granularity,
        name=name or f"{trace.name}:thin{keep_fraction:g}",
    )
