"""Contact traces: containers, loaders, synthesis, and statistics.

The paper's evaluation is entirely trace-driven: four CRAWDAD traces
(Infocom05, Infocom06, MIT Reality, UCSD — Table I) supply the contact
process.  Those datasets are not redistributable, so this package ships

* :mod:`repro.traces.contact` — the in-memory trace model;
* :mod:`repro.traces.loaders` — parsers for common published formats
  (CRAWDAD imote contact lists, ONE simulator connectivity reports, CSV),
  for users who have obtained the originals;
* :mod:`repro.traces.synthetic` — seeded generators reproducing each
  trace's Table I statistics and heterogeneous node-popularity structure;
* :mod:`repro.traces.catalog` — named presets for the four paper traces;
* :mod:`repro.traces.stream` — bounded-memory contact streams and the
  sparse 10⁵-node synthetic generator (scale-out path);
* :mod:`repro.traces.stats` — the Table I summary computation.
"""

from repro.traces.analysis import (
    ExponentialFit,
    aggregate_intercontact_ccdf,
    exponential_fit_report,
    fit_exponential,
    pair_intercontact_samples,
)
from repro.traces.catalog import TRACE_PRESETS, TracePreset, load_preset_trace
from repro.traces.contact import Contact, ContactTrace
from repro.traces.loaders import (
    load_crawdad_imote,
    load_csv_contacts,
    load_one_connectivity,
)
from repro.traces.mobility import (
    RandomWaypointModel,
    WorkingDayModel,
    contacts_from_mobility,
)
from repro.traces.stats import TraceSummary, summarize_trace
from repro.traces.stream import (
    ContactStream,
    SparseSyntheticConfig,
    StreamingTrace,
    stream_synthetic_contacts,
)
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.traces.toolkit import (
    filter_nodes,
    merge_traces,
    most_active_nodes,
    shift_time,
    thin_contacts,
)

__all__ = [
    "Contact",
    "ContactTrace",
    "TracePreset",
    "TRACE_PRESETS",
    "load_preset_trace",
    "load_crawdad_imote",
    "load_one_connectivity",
    "load_csv_contacts",
    "TraceSummary",
    "summarize_trace",
    "SyntheticTraceConfig",
    "generate_synthetic_trace",
    # streaming
    "ContactStream",
    "StreamingTrace",
    "SparseSyntheticConfig",
    "stream_synthetic_contacts",
    # analysis
    "ExponentialFit",
    "fit_exponential",
    "pair_intercontact_samples",
    "aggregate_intercontact_ccdf",
    "exponential_fit_report",
    # mobility
    "RandomWaypointModel",
    "WorkingDayModel",
    "contacts_from_mobility",
    # toolkit
    "filter_nodes",
    "merge_traces",
    "most_active_nodes",
    "shift_time",
    "thin_contacts",
]
