"""Parsers for published contact-trace formats.

For users who hold the original CRAWDAD datasets the paper evaluates on,
three loaders are provided:

* :func:`load_crawdad_imote` — the Cambridge/Haggle *imote* contact lists
  used for Infocom05/06 and similar Bluetooth traces.  Each line is
  ``<node_a> <node_b> <start> <end> [...]`` with integer node ids
  (1-based in the published files) and POSIX or relative timestamps.
* :func:`load_one_connectivity` — the ONE simulator's
  ``ConnectivityONEReport`` format: ``<time> CONN <a> <b> up|down``.
* :func:`load_csv_contacts` — a generic CSV with columns
  ``node_a,node_b,start,end`` (header optional).

All loaders normalise to zero-based contiguous node ids and shift time so
the first contact starts at t = 0, matching the conventions of
:class:`repro.traces.contact.ContactTrace`.  Normalisation needs the
global id set and time origin, so these loaders still *return* a
materialised trace — but they read their input line by line
(:func:`_iter_lines`), never holding the raw file in memory, so peak
memory is the parsed records, not records + text.

:func:`stream_csv_contacts` is the bounded-memory alternative for large
pre-normalised inputs: given a CSV already zero-based and time-sorted, it
returns a lazy :class:`repro.traces.stream.StreamingTrace` whose memory
is one contact regardless of file size.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, TextIO, Tuple, Union

from repro.errors import TraceFormatError
from repro.traces.contact import Contact, ContactTrace
from repro.traces.stream import StreamingTrace

__all__ = [
    "load_crawdad_imote",
    "load_one_connectivity",
    "load_csv_contacts",
    "stream_csv_contacts",
]

PathOrFile = Union[str, Path, TextIO]


def _iter_lines(source: PathOrFile) -> Iterator[str]:
    """Yield input lines lazily; file handles are read as-is, paths are
    opened per iteration (so a path-based source is replayable)."""
    if hasattr(source, "read"):
        for line in source:  # type: ignore[union-attr]
            yield line
        return
    with Path(source).open() as handle:
        for line in handle:
            yield line


def _normalise(
    raw: Iterable[Tuple[int, int, float, float]],
    granularity: float,
    name: str,
) -> ContactTrace:
    records = list(raw)
    if not records:
        raise TraceFormatError(f"no contacts parsed for trace {name!r}")
    ids = sorted({a for a, _, _, _ in records} | {b for _, b, _, _ in records})
    remap: Dict[int, int] = {orig: new for new, orig in enumerate(ids)}
    t0 = min(start for _, _, start, _ in records)
    contacts = [
        Contact(start - t0, end - t0, remap[a], remap[b])
        for a, b, start, end in records
    ]
    return ContactTrace(contacts, num_nodes=len(ids), granularity=granularity, name=name)


def load_crawdad_imote(
    source: PathOrFile,
    granularity: float = 120.0,
    name: str = "crawdad-imote",
) -> ContactTrace:
    """Parse a CRAWDAD/Haggle imote contact list.

    Lines are whitespace-separated; the first four fields are
    ``node_a node_b start end``; extra fields (sequence numbers) are
    ignored.  Comment lines starting with ``#`` and blank lines are
    skipped.
    """
    raw: List[Tuple[int, int, float, float]] = []
    for lineno, line in enumerate(_iter_lines(source), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 4:
            raise TraceFormatError(f"line {lineno}: expected >=4 fields, got {len(fields)}")
        try:
            a, b = int(fields[0]), int(fields[1])
            start, end = float(fields[2]), float(fields[3])
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        if a == b:
            continue  # some published files carry self-sightings; drop them
        if end < start:
            raise TraceFormatError(f"line {lineno}: contact ends before start")
        raw.append((a, b, start, end))
    return _normalise(raw, granularity, name)


def load_one_connectivity(
    source: PathOrFile,
    granularity: float = 1.0,
    name: str = "one-connectivity",
) -> ContactTrace:
    """Parse a ONE simulator ``ConnectivityONEReport`` file.

    Format per line: ``<time> CONN <a> <b> up`` opens a link,
    ``<time> CONN <a> <b> down`` closes it.  Links still open at the end
    of the file are closed at the last seen timestamp.
    """
    open_links: Dict[Tuple[int, int], float] = {}
    raw: List[Tuple[int, int, float, float]] = []
    last_time = 0.0
    for lineno, line in enumerate(_iter_lines(source), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 5 or fields[1].upper() != "CONN":
            raise TraceFormatError(f"line {lineno}: not a CONN record: {line!r}")
        try:
            time = float(fields[0])
            a, b = int(fields[2]), int(fields[3])
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        state = fields[4].lower()
        pair = (min(a, b), max(a, b))
        last_time = max(last_time, time)
        if state == "up":
            open_links.setdefault(pair, time)
        elif state == "down":
            start = open_links.pop(pair, None)
            if start is None:
                raise TraceFormatError(f"line {lineno}: 'down' without matching 'up' for {pair}")
            raw.append((pair[0], pair[1], start, time))
        else:
            raise TraceFormatError(f"line {lineno}: unknown link state {state!r}")
    for pair, start in open_links.items():
        raw.append((pair[0], pair[1], start, last_time))
    return _normalise(raw, granularity, name)


def load_csv_contacts(
    source: PathOrFile,
    granularity: float = 1.0,
    name: str = "csv-contacts",
) -> ContactTrace:
    """Parse a CSV contact list with columns ``node_a,node_b,start,end``.

    A header row is detected and skipped if the first field is not
    numeric.
    """
    lines = _iter_lines(source)
    reader = csv.reader(lines)
    raw: List[Tuple[int, int, float, float]] = []
    for lineno, row in enumerate(reader, start=1):
        if not row or not "".join(row).strip():
            continue
        first = row[0].strip()
        if lineno == 1 and not first.lstrip("-").replace(".", "", 1).isdigit():
            continue  # header
        if len(row) < 4:
            raise TraceFormatError(f"line {lineno}: expected 4 columns, got {len(row)}")
        try:
            a, b = int(row[0]), int(row[1])
            start, end = float(row[2]), float(row[3])
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        raw.append((a, b, start, end))
    return _normalise(raw, granularity, name)


def stream_csv_contacts(
    source: Union[str, Path],
    num_nodes: int,
    end_time: float,
    granularity: float = 1.0,
    name: str = "csv-stream",
) -> StreamingTrace:
    """Lazy :class:`StreamingTrace` over a pre-normalised contact CSV.

    The file must already satisfy the stream contract the loaders
    usually establish by materialising: zero-based node ids below
    *num_nodes*, rows sorted by start time, times within
    ``[0, end_time]``.  Sortedness and id ranges are enforced lazily by
    the stream wrapper as rows are consumed.  Only path sources are
    accepted — a file handle is single-shot, and the simulator iterates
    a stream more than once.
    """
    path = Path(source)

    def generate() -> Iterator[Contact]:
        for lineno, row in enumerate(csv.reader(_iter_lines(path)), start=1):
            if not row or not "".join(row).strip():
                continue
            first = row[0].strip()
            if lineno == 1 and not first.lstrip("-").replace(".", "", 1).isdigit():
                continue  # header
            if len(row) < 4:
                raise TraceFormatError(
                    f"line {lineno}: expected 4 columns, got {len(row)}"
                )
            try:
                yield Contact(float(row[2]), float(row[3]), int(row[0]), int(row[1]))
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from exc

    return StreamingTrace(
        name=name,
        num_nodes=num_nodes,
        start_time=0.0,
        end_time=end_time,
        factory=generate,
        granularity=granularity,
    )
