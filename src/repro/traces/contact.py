"""In-memory model of a contact trace.

A *contact* is an interval during which two devices can exchange data
(paper Sec. IV-B: Bluetooth sightings, or association to the same WiFi
AP).  A *trace* is a time-sorted list of contacts over a fixed node set.

Node contacts are symmetric (paper Sec. III-B), so each contact is stored
once with ``node_a < node_b`` canonical ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TraceConsistencyError

__all__ = ["Contact", "ContactTrace"]


@dataclass(frozen=True, order=True)
class Contact:
    """One pairwise contact interval.

    Ordering is by ``(start, end, node_a, node_b)``, which makes a sorted
    list of contacts replayable as a discrete-event stream.
    """

    start: float
    end: float
    node_a: int
    node_b: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TraceConsistencyError(
                f"contact ends before it starts: [{self.start}, {self.end}]"
            )
        if self.node_a == self.node_b:
            raise TraceConsistencyError(f"self-contact at node {self.node_a}")
        if self.node_a > self.node_b:
            # Canonicalise so the undirected pair has one representation.
            low, high = self.node_b, self.node_a
            object.__setattr__(self, "node_a", low)
            object.__setattr__(self, "node_b", high)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.node_a, self.node_b)

    def involves(self, node: int) -> bool:
        return node == self.node_a or node == self.node_b

    def peer_of(self, node: int) -> int:
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError(f"node {node} is not part of contact {self}")


class ContactTrace:
    """A time-sorted collection of :class:`Contact` records.

    Parameters
    ----------
    contacts:
        Contact records in any order; stored sorted by start time.
    num_nodes:
        Total number of devices.  If omitted, inferred as
        ``max(node id) + 1``.
    granularity:
        Sampling period of the original collection (seconds); affects only
        reporting (Table I), not simulation.
    name:
        Human-readable trace name for reports.
    start_time / end_time:
        Declared observation window.  If omitted, derived from the first
        contact's start and the last contact's end — the historical
        behaviour for the Table I traces.  Streams declare their window
        up front, and ``materialize()`` passes it through so rate
        estimation sees the same elapsed time either way.
    """

    def __init__(
        self,
        contacts: Iterable[Contact],
        num_nodes: Optional[int] = None,
        granularity: float = 0.0,
        name: str = "unnamed",
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
    ):
        self._contacts: List[Contact] = sorted(contacts)
        if self._contacts:
            derived_start = self._contacts[0].start
            derived_end = max(c.end for c in self._contacts)
            if start_time is not None and start_time > derived_start:
                raise TraceConsistencyError(
                    f"declared start {start_time} is after the first "
                    f"contact at {derived_start}"
                )
            if end_time is not None and end_time < derived_end:
                raise TraceConsistencyError(
                    f"declared end {end_time} precedes the last contact "
                    f"ending at {derived_end}"
                )
        self._start_time = None if start_time is None else float(start_time)
        self._end_time = None if end_time is None else float(end_time)
        if num_nodes is None:
            if not self._contacts:
                raise TraceConsistencyError("empty trace requires explicit num_nodes")
            num_nodes = 1 + max(max(c.node_a, c.node_b) for c in self._contacts)
        for contact in self._contacts:
            if contact.node_b >= num_nodes:
                raise TraceConsistencyError(
                    f"contact references node {contact.node_b} "
                    f">= num_nodes {num_nodes}"
                )
        self._num_nodes = int(num_nodes)
        self._granularity = float(granularity)
        self._name = name

    # --- basic accessors ----------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def granularity(self) -> float:
        return self._granularity

    @property
    def num_contacts(self) -> int:
        return len(self._contacts)

    @property
    def contacts(self) -> Sequence[Contact]:
        return tuple(self._contacts)

    @property
    def start_time(self) -> float:
        if self._start_time is not None:
            return self._start_time
        return self._contacts[0].start if self._contacts else 0.0

    @property
    def end_time(self) -> float:
        if self._end_time is not None:
            return self._end_time
        return max((c.end for c in self._contacts), default=0.0)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def nodes(self) -> range:
        return range(self._num_nodes)

    def materialize(self) -> "ContactTrace":
        """Already materialised — self.  (:class:`repro.traces.stream.
        ContactStream` conformance, so trace and stream interchange.)"""
        return self

    def __len__(self) -> int:
        return len(self._contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._contacts)

    # --- derived views ---------------------------------------------------

    def pair_contact_counts(self) -> Dict[Tuple[int, int], int]:
        """Number of contacts per (canonical) node pair."""
        counts: Dict[Tuple[int, int], int] = {}
        for contact in self._contacts:
            counts[contact.pair] = counts.get(contact.pair, 0) + 1
        return counts

    def contacts_in_window(self, start: float, end: float) -> List[Contact]:
        """Contacts whose start time lies in [start, end)."""
        return [c for c in self._contacts if start <= c.start < end]

    def slice(self, start: float, end: float, name: Optional[str] = None) -> "ContactTrace":
        """Sub-trace of contacts starting within [start, end)."""
        return ContactTrace(
            self.contacts_in_window(start, end),
            num_nodes=self._num_nodes,
            granularity=self._granularity,
            name=name or f"{self._name}[{start:.0f},{end:.0f})",
        )

    def split_halves(self) -> Tuple["ContactTrace", "ContactTrace"]:
        """Warm-up / evaluation halves, per the paper's setup (Sec. VI-A).

        The first half accumulates contact-rate information and drives NCL
        selection; data and queries are generated only in the second half.
        """
        midpoint = self.start_time + self.duration / 2.0
        return (
            self.slice(self.start_time, midpoint, name=f"{self._name}:warmup"),
            self.slice(midpoint, self.end_time + 1.0, name=f"{self._name}:eval"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ContactTrace(name={self._name!r}, nodes={self._num_nodes}, "
            f"contacts={len(self._contacts)}, duration={self.duration:.0f}s)"
        )
