"""Presets for the four traces of the paper's Table I.

Each preset records the published Table I statistics together with the
NCL-metric time budget T the paper uses for the trace (Sec. IV-B) and the
default number of NCLs its evaluation picks (Sec. VI-B / VI-D).  Loading a
preset produces a seeded synthetic trace calibrated to those statistics
(see :mod:`repro.traces.synthetic` and the substitution table in
DESIGN.md).

``STREAM_PRESETS`` are the scale-out counterparts: sparse-topology
synthetic sources loaded as bounded-memory
:class:`~repro.traces.stream.StreamingTrace` streams rather than
materialised traces, sized well beyond what the Table I generator can
reach (the headline ``sparse1e5`` preset is a 10⁵-node trace).  Each
carries an explicit NCL time budget so the adaptive calibration — an
all-pairs sample, O(N²) by construction — never runs at that scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.traces.contact import ContactTrace
from repro.traces.stream import SparseSyntheticConfig, StreamingTrace, stream_synthetic_contacts
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, WEEK

__all__ = [
    "TracePreset",
    "TRACE_PRESETS",
    "load_preset_trace",
    "StreamPreset",
    "STREAM_PRESETS",
    "load_stream_trace",
]


@dataclass(frozen=True)
class TracePreset:
    """Published statistics and paper parameters for one Table I trace."""

    key: str
    network_type: str
    num_devices: int
    num_contacts: int
    duration_days: float
    granularity_seconds: float
    pairwise_contact_frequency_per_day: float
    ncl_time_budget: float  # T in Eq. (3), per Sec. IV-B
    default_num_ncls: int
    #: community count used by the synthetic stand-in (labs / interest
    #: groups); chosen near the paper's per-trace NCL sweet spot.
    num_communities: int = 8

    def synthetic_config(
        self,
        seed: int = 0,
        node_factor: float = 1.0,
        time_factor: float = 1.0,
    ) -> SyntheticTraceConfig:
        """Synthetic configuration calibrated to this preset.

        ``node_factor``/``time_factor`` scale the trace down for fast test
        and benchmark runs while preserving per-pair contact density.
        """
        config = SyntheticTraceConfig(
            name=self.key,
            num_nodes=self.num_devices,
            duration=self.duration_days * DAY,
            total_contacts=self.num_contacts,
            granularity=self.granularity_seconds,
            num_communities=self.num_communities,
            seed=seed,
        )
        if node_factor != 1.0 or time_factor != 1.0:
            config = config.scaled(node_factor=node_factor, time_factor=time_factor)
        return config


#: Table I of the paper, verbatim.
TRACE_PRESETS: Dict[str, TracePreset] = {
    "infocom05": TracePreset(
        key="infocom05",
        network_type="Bluetooth",
        num_devices=41,
        num_contacts=22_459,
        duration_days=3,
        granularity_seconds=120,
        pairwise_contact_frequency_per_day=4.6,
        ncl_time_budget=1 * HOUR,
        default_num_ncls=5,
        num_communities=4,
    ),
    "infocom06": TracePreset(
        key="infocom06",
        network_type="Bluetooth",
        num_devices=78,
        num_contacts=182_951,
        duration_days=4,
        granularity_seconds=120,
        pairwise_contact_frequency_per_day=6.7,
        ncl_time_budget=1 * HOUR,
        default_num_ncls=5,
        num_communities=5,
    ),
    "mit_reality": TracePreset(
        key="mit_reality",
        network_type="Bluetooth",
        num_devices=97,
        num_contacts=114_046,
        duration_days=246,
        granularity_seconds=300,
        pairwise_contact_frequency_per_day=0.024,
        ncl_time_budget=1 * WEEK,
        default_num_ncls=8,
        num_communities=8,
    ),
    "ucsd": TracePreset(
        key="ucsd",
        network_type="WiFi",
        num_devices=275,
        num_contacts=123_225,
        duration_days=77,
        granularity_seconds=20,
        pairwise_contact_frequency_per_day=0.036,
        ncl_time_budget=3 * DAY,
        default_num_ncls=8,
        num_communities=12,
    ),
}


def load_preset_trace(
    key: str,
    seed: int = 0,
    node_factor: float = 1.0,
    time_factor: float = 1.0,
) -> ContactTrace:
    """Generate the synthetic stand-in for one of the paper's traces.

    Raises ``KeyError`` listing the available presets for an unknown key.
    """
    try:
        preset = TRACE_PRESETS[key]
    except KeyError:
        raise KeyError(
            f"unknown trace preset {key!r}; available: {sorted(TRACE_PRESETS)}"
        ) from None
    return generate_synthetic_trace(
        preset.synthetic_config(seed=seed, node_factor=node_factor, time_factor=time_factor)
    )


@dataclass(frozen=True)
class StreamPreset:
    """Parameters of one streaming large-scale synthetic trace source."""

    key: str
    num_devices: int
    duration_days: float
    num_contacts: int
    granularity_seconds: float
    ncl_time_budget: float
    default_num_ncls: int
    ring_neighbors: int = 8
    shortcut_neighbors: int = 4

    def stream_config(
        self,
        seed: int = 0,
        node_factor: float = 1.0,
        time_factor: float = 1.0,
    ) -> SparseSyntheticConfig:
        """Sparse stream configuration scaled by the trace-spec factors.

        Contact volume scales with node_factor × time_factor: edge count
        is O(N · degree), so this keeps the per-edge contact rate — and
        hence the estimated topology — invariant under scaling.
        """
        return SparseSyntheticConfig(
            name=self.key,
            num_nodes=max(3, round(self.num_devices * node_factor)),
            duration=self.duration_days * DAY * time_factor,
            total_contacts=max(1, round(self.num_contacts * node_factor * time_factor)),
            granularity=self.granularity_seconds,
            ring_neighbors=self.ring_neighbors,
            shortcut_neighbors=self.shortcut_neighbors,
            seed=seed,
        )


#: Scale-out streaming sources (not part of the paper's Table I).
STREAM_PRESETS: Dict[str, StreamPreset] = {
    "sparse1e5": StreamPreset(
        key="sparse1e5",
        num_devices=100_000,
        duration_days=7,
        num_contacts=2_000_000,
        granularity_seconds=120,
        ncl_time_budget=1 * DAY,
        default_num_ncls=32,
    ),
}


def load_stream_trace(
    key: str,
    seed: int = 0,
    node_factor: float = 1.0,
    time_factor: float = 1.0,
) -> StreamingTrace:
    """Build the lazy stream for one of the ``STREAM_PRESETS``.

    Raises ``KeyError`` listing the available presets for an unknown key.
    """
    try:
        preset = STREAM_PRESETS[key]
    except KeyError:
        raise KeyError(
            f"unknown stream preset {key!r}; available: {sorted(STREAM_PRESETS)}"
        ) from None
    return stream_synthetic_contacts(
        preset.stream_config(seed=seed, node_factor=node_factor, time_factor=time_factor)
    )
