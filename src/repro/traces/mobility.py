"""Mobility-model contact generation: traces from simulated movement.

The paper's traces were recorded from *physical mobility* (people
walking around conferences and campuses).  Besides the statistical
generator of :mod:`repro.traces.synthetic`, this module derives contact
traces from an explicit spatial simulation, the classic methodology of
DTN evaluations:

* :class:`RandomWaypointModel` — nodes pick a uniform destination in a
  rectangular area, move there at a uniform-random speed, pause, repeat.
  The baseline mobility model of the MANET/DTN literature.
* :class:`WorkingDayModel` — a light-weight home/office pattern: each
  node commutes between its home point and a shared office hotspot on a
  daily rhythm, producing the community structure and recurring contacts
  of campus traces.

Positions are sampled every ``sample_period`` seconds; two nodes are in
contact while within ``radio_range`` metres (Bluetooth-class, ~10 m).
Sampling runs on a spatial grid, so a step costs O(nodes + close pairs)
instead of O(nodes²).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedSequenceFactory
from repro.traces.contact import Contact, ContactTrace
from repro.units import DAY, HOUR

__all__ = [
    "MobilityModel",
    "RandomWaypointModel",
    "WorkingDayModel",
    "contacts_from_mobility",
]


class MobilityModel(Protocol):
    """A positional process: positions(t) for every node."""

    num_nodes: int

    def positions(self, t: float) -> np.ndarray:
        """(num_nodes, 2) array of coordinates at time *t* (t >= 0,
        non-decreasing across calls)."""
        ...


@dataclass
class _Leg:
    """One movement leg: from *origin* to *target*, then pause."""

    start_time: float
    origin: np.ndarray
    target: np.ndarray
    speed: float
    pause: float

    @property
    def travel_time(self) -> float:
        distance = float(np.linalg.norm(self.target - self.origin))
        return distance / self.speed if self.speed > 0 else 0.0

    @property
    def end_time(self) -> float:
        return self.start_time + self.travel_time + self.pause

    def position(self, t: float) -> np.ndarray:
        elapsed = t - self.start_time
        travel = self.travel_time
        if travel <= 0 or elapsed >= travel:
            return self.target
        fraction = max(0.0, elapsed / travel)
        return self.origin + fraction * (self.target - self.origin)


class RandomWaypointModel:
    """Random waypoint mobility over a rectangular area.

    Parameters follow the classic formulation: uniform destination,
    speed uniform in [min_speed, max_speed] (strictly positive to avoid
    the well-known speed-decay pathology), pause uniform in
    [0, max_pause].
    """

    def __init__(
        self,
        num_nodes: int,
        area: Tuple[float, float] = (1000.0, 1000.0),
        min_speed: float = 0.5,
        max_speed: float = 1.5,
        max_pause: float = 120.0,
        seed: int = 0,
    ):
        if num_nodes < 2:
            raise ConfigurationError("mobility needs at least two nodes")
        if min_speed <= 0 or max_speed < min_speed:
            raise ConfigurationError("need 0 < min_speed <= max_speed")
        if max_pause < 0:
            raise ConfigurationError("max_pause must be non-negative")
        self.num_nodes = int(num_nodes)
        self.area = (float(area[0]), float(area[1]))
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.max_pause = float(max_pause)
        self._rng = SeedSequenceFactory(seed).generator("rwp")
        self._legs: List[_Leg] = [
            self._new_leg(0.0, self._random_point()) for _ in range(self.num_nodes)
        ]

    def _random_point(self) -> np.ndarray:
        return np.array(
            [
                self._rng.uniform(0.0, self.area[0]),
                self._rng.uniform(0.0, self.area[1]),
            ]
        )

    def _new_leg(self, start_time: float, origin: np.ndarray) -> _Leg:
        return _Leg(
            start_time=start_time,
            origin=origin,
            target=self._random_point(),
            speed=float(self._rng.uniform(self.min_speed, self.max_speed)),
            pause=float(self._rng.uniform(0.0, self.max_pause)),
        )

    def positions(self, t: float) -> np.ndarray:
        coords = np.zeros((self.num_nodes, 2))
        for node in range(self.num_nodes):
            leg = self._legs[node]
            while leg.end_time <= t:
                leg = self._new_leg(leg.end_time, leg.target)
                self._legs[node] = leg
            coords[node] = leg.position(t)
        return coords


class WorkingDayModel:
    """Home/office commuting: campus-like recurring contact structure.

    Each node owns a fixed *home* point; nodes are partitioned over
    ``num_offices`` shared office hotspots.  A node is at its office
    during work hours (with per-node jittered start), at home otherwise,
    and moves between the two at walking speed.  Office co-location
    creates the strong intra-community contact rates of real campus
    traces; a shared *cafeteria* visited around midday (staggered per
    node) creates the cross-community mixing without which the campus
    would decompose into disconnected cliques.
    """

    def __init__(
        self,
        num_nodes: int,
        area: Tuple[float, float] = (2000.0, 2000.0),
        num_offices: int = 4,
        work_start: float = 9 * HOUR,
        work_hours: float = 8 * HOUR,
        speed: float = 1.2,
        jitter: float = 0.5 * HOUR,
        lunch_duration: float = 0.5 * HOUR,
        seed: int = 0,
    ):
        if num_nodes < 2:
            raise ConfigurationError("mobility needs at least two nodes")
        if num_offices < 1:
            raise ConfigurationError("need at least one office")
        if not 0 <= work_start < DAY or work_hours <= 0 or work_start + work_hours > DAY:
            raise ConfigurationError("work period must fit within one day")
        if speed <= 0:
            raise ConfigurationError("speed must be positive")
        self.num_nodes = int(num_nodes)
        self.area = (float(area[0]), float(area[1]))
        self.speed = float(speed)
        self.work_start = float(work_start)
        self.work_hours = float(work_hours)
        rng = SeedSequenceFactory(seed).generator("wdm")
        self._homes = rng.uniform((0, 0), self.area, size=(self.num_nodes, 2))
        # Office hotspots spread on a coarse grid with small extent each.
        self._offices = rng.uniform(
            (0.2 * self.area[0], 0.2 * self.area[1]),
            (0.8 * self.area[0], 0.8 * self.area[1]),
            size=(num_offices, 2),
        )
        self._office_of = rng.integers(0, num_offices, size=self.num_nodes)
        # Per-node desk offset inside the office (radio-range scale).
        self._desk_offsets = rng.normal(0.0, 4.0, size=(self.num_nodes, 2))
        self._jitter = rng.uniform(-jitter, jitter, size=self.num_nodes)
        # Shared cafeteria at the area centre; staggered lunch starts in
        # the middle third of the work period keep it busy for hours
        # while every sitting overlaps with many others.
        self._cafeteria = np.array([0.5 * self.area[0], 0.5 * self.area[1]])
        self._lunch_duration = float(max(0.0, lunch_duration))
        lunch_lo = self.work_start + 0.33 * self.work_hours
        lunch_hi = self.work_start + 0.67 * self.work_hours - self._lunch_duration
        self._lunch_start = rng.uniform(
            lunch_lo, max(lunch_lo, lunch_hi), size=self.num_nodes
        )
        self._table_offsets = rng.normal(0.0, 3.0, size=(self.num_nodes, 2))

    def _office_point(self, node: int) -> np.ndarray:
        return self._offices[self._office_of[node]] + self._desk_offsets[node]

    def positions(self, t: float) -> np.ndarray:
        coords = np.zeros((self.num_nodes, 2))
        time_of_day = t % DAY
        for node in range(self.num_nodes):
            start = self.work_start + float(self._jitter[node])
            end = start + self.work_hours
            home = self._homes[node]
            office = self._office_point(node)
            commute = float(np.linalg.norm(office - home)) / self.speed
            lunch_start = float(self._lunch_start[node])
            lunch_end = lunch_start + self._lunch_duration
            if self._lunch_duration > 0 and lunch_start <= time_of_day < lunch_end:
                coords[node] = self._cafeteria + self._table_offsets[node]
            elif start <= time_of_day < end:
                # commuting in at the start of the window
                progress = (time_of_day - start) / commute if commute > 0 else 1.0
                coords[node] = home + min(1.0, progress) * (office - home)
            elif end <= time_of_day < end + commute:
                progress = (time_of_day - end) / commute
                coords[node] = office + min(1.0, progress) * (home - office)
            else:
                coords[node] = home
        return coords


def contacts_from_mobility(
    model: MobilityModel,
    duration: float,
    radio_range: float = 10.0,
    sample_period: float = 60.0,
    name: str = "mobility",
) -> ContactTrace:
    """Sample a mobility model into a :class:`ContactTrace`.

    Two nodes are in contact while within *radio_range* at consecutive
    samples; a contact interval opens at the first such sample and
    closes at the first sample where they separate (granularity =
    ``sample_period``, like real sampled traces).
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if radio_range <= 0 or sample_period <= 0:
        raise ConfigurationError("radio_range and sample_period must be positive")

    open_since: Dict[Tuple[int, int], float] = {}
    contacts: List[Contact] = []
    cell = radio_range  # grid cell size = range → neighbors in 3x3 cells

    t = 0.0
    while t <= duration:
        coords = model.positions(t)
        # spatial hash
        grid: Dict[Tuple[int, int], List[int]] = {}
        for node in range(model.num_nodes):
            key = (int(coords[node, 0] // cell), int(coords[node, 1] // cell))
            grid.setdefault(key, []).append(node)
        near_now = set()
        for (cx, cy), members in grid.items():
            neighborhood: List[int] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    neighborhood.extend(grid.get((cx + dx, cy + dy), ()))
            for a in members:
                for b in neighborhood:
                    if b <= a:
                        continue
                    if np.linalg.norm(coords[a] - coords[b]) <= radio_range:
                        near_now.add((a, b))
        # open new contacts
        for pair in near_now:
            open_since.setdefault(pair, t)
        # close departed contacts
        for pair in list(open_since):
            if pair not in near_now:
                start = open_since.pop(pair)
                contacts.append(Contact(start, t, pair[0], pair[1]))
        t += sample_period
    for pair, start in open_since.items():
        contacts.append(Contact(start, min(t, duration + sample_period), pair[0], pair[1]))

    return ContactTrace(
        contacts,
        num_nodes=model.num_nodes,
        granularity=sample_period,
        name=name,
    )
