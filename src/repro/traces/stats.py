"""Trace summary statistics — the reproduction of the paper's Table I.

:func:`summarize_trace` computes, for any :class:`ContactTrace`, the same
columns Table I reports: device count, total internal contacts, duration
in days, collection granularity, and the average pairwise contact
frequency per day.  The pairwise frequency is reported two ways because
the paper does not pin down its denominator:

* ``pairwise_frequency_all`` — contacts / (all node pairs × days);
* ``pairwise_frequency_met`` — contacts / (pairs that ever met × days).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.traces.contact import ContactTrace
from repro.units import DAY

__all__ = ["TraceSummary", "summarize_trace"]


@dataclass(frozen=True)
class TraceSummary:
    """One row of the reproduced Table I, plus auxiliary statistics."""

    name: str
    num_devices: int
    num_contacts: int
    duration_days: float
    granularity_seconds: float
    pairwise_frequency_all: float
    pairwise_frequency_met: float
    fraction_pairs_met: float
    mean_contact_duration: float
    median_contact_duration: float
    mean_contacts_per_node_per_day: float

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering / CSV export."""
        return {
            "trace": self.name,
            "devices": self.num_devices,
            "contacts": self.num_contacts,
            "duration_days": round(self.duration_days, 1),
            "granularity_s": self.granularity_seconds,
            "pair_freq_all_per_day": round(self.pairwise_frequency_all, 4),
            "pair_freq_met_per_day": round(self.pairwise_frequency_met, 4),
            "pairs_met_frac": round(self.fraction_pairs_met, 3),
            "mean_contact_dur_s": round(self.mean_contact_duration, 1),
        }


def summarize_trace(trace: ContactTrace) -> TraceSummary:
    """Compute the Table I summary row for *trace*."""
    n = trace.num_nodes
    num_pairs = n * (n - 1) // 2
    duration_days = max(trace.duration / DAY, 1e-12)
    pair_counts = trace.pair_contact_counts()
    pairs_met = len(pair_counts)
    durations = np.array([c.duration for c in trace.contacts]) if len(trace) else np.array([0.0])

    per_node_contacts = np.zeros(n)
    for contact in trace:
        per_node_contacts[contact.node_a] += 1
        per_node_contacts[contact.node_b] += 1

    return TraceSummary(
        name=trace.name,
        num_devices=n,
        num_contacts=trace.num_contacts,
        duration_days=trace.duration / DAY,
        granularity_seconds=trace.granularity,
        pairwise_frequency_all=trace.num_contacts / (num_pairs * duration_days),
        pairwise_frequency_met=(
            trace.num_contacts / (pairs_met * duration_days) if pairs_met else 0.0
        ),
        fraction_pairs_met=pairs_met / num_pairs if num_pairs else 0.0,
        mean_contact_duration=float(durations.mean()),
        median_contact_duration=float(np.median(durations)),
        mean_contacts_per_node_per_day=float(per_node_contacts.mean()) / duration_days,
    )


def summarize_traces(traces: List[ContactTrace]) -> List[TraceSummary]:
    """Summary rows for several traces (the full Table I)."""
    return [summarize_trace(trace) for trace in traces]
