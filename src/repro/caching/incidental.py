"""Shared machinery for the incidental-caching baselines (Sec. VI).

None of the four baselines (NoCache, RandomCache, CacheData,
BundleCache) has NCL structure.  As in the ad-hoc setting CacheData [29]
comes from, a requester addresses its query to the **data source**
("each query result is returned only by the data source" — NoCache), and
the query travels along the opportunistic path-weight gradient toward
that source.  Relays that happen to hold a cached copy intercept the
query and answer it; which nodes hold such copies is exactly what the
four baselines differ in:

* NoCache — nobody caches, only the source answers;
* RandomCache — requesters cache what they received;
* CacheData — relays cache pass-by reply data they observed to be
  popular (but in a DTN they see only the fragmentary query history that
  happens to route through them — the paper's core criticism);
* BundleCache — well-connected relays cache pass-by bundles, so the hub
  nodes that queries naturally route through hold the copies.

Responses return along the same gradient transport the intentional
scheme uses, so the comparison isolates caching behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.caching.base import CachingScheme, SchemeServices
from repro.core.data import DataItem, Query
from repro.routing.base import ForwardAction
from repro.routing.rate_gradient import RateGradientRouter
from repro.graph.contact_graph import ContactGraph
from repro.sim.bundles import QueryBundle
from repro.sim.network import TransferBudget
from repro.sim.node import Node

__all__ = ["IncidentalScheme"]


class IncidentalScheme(CachingScheme):
    """Base for baselines: source-addressed queries, no push, no exchange.

    ``QueryBundle.target_central`` is reused to carry the query's
    destination — the data source — since the baselines have no central
    nodes.
    """

    def __init__(self) -> None:
        super().__init__()
        self._query_router: Optional[RateGradientRouter] = None

    def attach(self, services: SchemeServices) -> None:
        super().attach(services)
        # Baselines have no administrator-maintained path tables; their
        # source-addressed queries ride the same local-knowledge social
        # forwarding as responses.
        self._query_router = RateGradientRouter()

    def on_graph_updated(self, graph: ContactGraph, now: float) -> None:
        super().on_graph_updated(graph, now)
        if self._query_router is not None:
            self._query_router.update_graph(graph)

    def on_data_generated(self, node: Node, data: DataItem, now: float) -> None:
        """No push: data stays at its source until queried."""
        self.answer_pending_queries(node, data.data_id, now)

    def on_query_generated(self, node: Node, query: Query, now: float) -> None:
        services = self._require_services()
        node.observe_query(query, now)
        source = services.lookup_data(query.data_id)
        if source is None:
            return
        bundle = QueryBundle(
            created_at=now,
            expires_at=query.expires_at,
            query=query,
            target_central=source.source,
        )
        node.store_bundle(bundle)
        self.try_respond(node, query, now)

    def _forward_queries(
        self, x: Node, y: Node, now: float, budget: TransferBudget
    ) -> None:
        """Advance x's query bundles toward the data source through y."""
        if self.graph is None or self._query_router is None:
            return
        for bundle in x.bundles:
            if not isinstance(bundle, QueryBundle):
                continue
            if bundle.is_expired(now):
                x.drop_bundle(bundle.key)
                continue
            destination = bundle.target_central
            assert destination is not None  # baselines always set the source
            decision = self._query_router.decide(
                x.node_id, y.node_id, destination, self.graph, bundle.query.remaining(now)
            )
            if not decision.transfers or y.has_seen(bundle.key):
                continue
            if not budget.try_consume(bundle.size_bits):
                continue
            if decision.action is ForwardAction.HANDOVER:
                x.drop_bundle(bundle.key)
            if y.node_id != destination:
                replica = QueryBundle(
                    created_at=bundle.created_at,
                    expires_at=bundle.expires_at,
                    query=bundle.query,
                    target_central=destination,
                )
                y.store_bundle(replica)
            y.observe_query(bundle.query, now)
            self.try_respond(y, bundle.query, now)

    def on_contact(self, a: Node, b: Node, now: float, budget: TransferBudget) -> None:
        self.housekeeping(a, now)
        self.housekeeping(b, now)
        self.process_responses(a, b, now, budget)
        self.process_responses(b, a, now, budget)
        self._forward_queries(a, b, now, budget)
        self._forward_queries(b, a, now, budget)
