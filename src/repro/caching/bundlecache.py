"""BundleCache baseline — contact-pattern-aware incidental caching in
DTNs (after [23], Sec. VI).

[23] packs data as bundles and lets well-connected relays cache pass-by
bundles to minimise the average access delay toward future requesters.
Reimplementation (documented in DESIGN.md): a relay taking over a
response bundle caches the data iff the relay's aggregate contact rate is
in the top ``connectivity_quantile`` of the network — i.e. hubs cache
pass-by data — and replacement evicts by a delay-minimising utility
(popularity × the relay's aggregate contact rate), which is [23]'s
objective expressed on our substrate.

This gives BundleCache the qualitative behaviour the paper measures:
clearly better than the ad-hoc transplants (its copies sit at
well-connected nodes), clearly worse than intentional NCL caching (no
coordination, no push, duplicated copies — the paper reports ~50% gap).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.data import DataItem
from repro.core.replacement import UtilityKnapsackPolicy
from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.sim.bundles import ResponseBundle
from repro.sim.node import Node
from repro.caching.incidental import IncidentalScheme

__all__ = ["BundleCache"]


class BundleCache(IncidentalScheme):
    """Hub relays cache pass-by bundles; utility-based eviction."""

    name = "bundlecache"

    def __init__(self, connectivity_quantile: float = 0.5):
        super().__init__()
        if not 0.0 < connectivity_quantile <= 1.0:
            raise ConfigurationError("connectivity_quantile must be in (0, 1]")
        self.connectivity_quantile = float(connectivity_quantile)
        self._admit = UtilityKnapsackPolicy(probabilistic=False)
        self._rate_threshold: Optional[float] = None
        self._aggregate_rates: Optional[np.ndarray] = None

    def on_graph_updated(self, graph: ContactGraph, now: float) -> None:
        super().on_graph_updated(graph, now)
        rates = graph.aggregate_rates()  # CSR-based, never N×N
        self._aggregate_rates = rates
        positive = rates[rates > 0]
        if positive.size:
            self._rate_threshold = float(
                np.quantile(positive, self.connectivity_quantile)
            )
        else:
            self._rate_threshold = None

    def _is_hub(self, node_id: int) -> bool:
        if self._rate_threshold is None or self._aggregate_rates is None:
            return False
        return bool(self._aggregate_rates[node_id] >= self._rate_threshold)

    def _utility_fn(self, node: Node) -> Callable[[DataItem], float]:
        rate = 0.0
        if self._aggregate_rates is not None:
            total = float(self._aggregate_rates.max()) or 1.0
            rate = float(self._aggregate_rates[node.node_id]) / total

        def utility(item: DataItem) -> float:
            return node.popularity.popularity(item.data_id, item.expires_at) * rate

        return utility

    def on_response_relayed(self, relay: Node, bundle: ResponseBundle, now: float) -> None:
        if relay.find_data(bundle.data.data_id, now) is not None:
            return
        if self._is_hub(relay.node_id):
            self._admit.admit(
                relay.buffer, bundle.data, now, utility=self._utility_fn(relay)
            )
            self.answer_pending_queries(relay, bundle.data.data_id, now)
