"""The paper's intentional NCL caching scheme (Sec. V).

Lifecycle:

* **Warm-up end** — the "network administrator" selects the top-K NCL
  central nodes from the accumulated contact rates (Sec. IV-A).
* **Push** (Sec. V-A) — a data source sends one copy toward each central
  node along the path-weight gradient; the copy is cached at every relay
  it traverses (relays are temporal caching locations) and sticks
  permanently at the first relay whose successor cannot fit it.
* **Pull** (Sec. V-B) — a requester multicasts its query as one gradient
  copy per central node; a copy reaching its central node switches to
  broadcast mode and floods the NCL's member nodes until the query
  expires.  Every node observing the query records it in its query
  history (popularity table) and, if it holds the data, runs the
  probabilistic response decision (Sec. V-C).
* **Replacement** (Sec. V-D) — whenever two nodes that both hold cached
  data meet, the utility-knapsack exchange (Eq. 7 + Algorithm 1) runs,
  with the higher-central-weight node selecting first and per-node
  utilities uᵢ = popularity × path weight to the node's central node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.data import DataItem, Query
from repro.core.ncl import (
    SELECTION_STRATEGIES,
    NCLSelection,
    calibrate_time_budget,
    select_ncls_by,
)
from repro.core.replacement import (
    ExchangeContext,
    ReplacementPolicy,
    UtilityKnapsackPolicy,
)
from repro.core.response import (
    AlwaysRespond,
    PathAwareResponse,
    SigmoidResponse,
)
from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import PathMode
from repro.obs.events import TraceEvent, TraceEventKind
from repro.obs.profile import maybe_span
from repro.routing.base import ForwardAction
from repro.routing.gradient import GradientRouter
from repro.sim.bundles import PushBundle, QueryBundle
from repro.sim.invariants import check_buffer_occupancy
from repro.sim.network import TransferBudget
from repro.sim.node import Node
from repro.caching.base import CachingScheme

__all__ = ["IntentionalConfig", "IntentionalCaching"]


@dataclass(frozen=True)
class IntentionalConfig:
    """Parameters of the intentional caching scheme.

    Attributes
    ----------
    num_ncls:
        K, the number of NCLs (Sec. VI-D studies its impact).
    ncl_time_budget:
        T of the NCL selection metric (per-trace, Sec. IV-B).  ``None``
        applies the paper's adaptive rule at warm-up: the administrator
        calibrates T so the metric distribution is well differentiated
        (:func:`repro.core.ncl.calibrate_time_budget`).
    response_strategy:
        ``"sigmoid"`` (Eq. 4, default), ``"path_aware"`` (p_CR of the
        remaining time) or ``"always"`` (ablation: every holder replies).
    p_min / p_max:
        Sigmoid response parameters (Sec. V-C).
    probabilistic_selection:
        Algorithm 1 on (True, default) or plain knapsack (ablation).
    path_mode:
        Shortest-opportunistic-path objective.
    fresh_exemption_fraction:
        Footnote 4 of the paper: newly generated, never-requested data is
        not subject to cache replacement.  A cached item is "fresh" while
        it has seen no request at its holder and less than this fraction
        of its lifetime has elapsed; fresh items sit out exchanges.
    reelect:
        Re-run NCL selection on every contact-graph refresh after warm-up
        (dynamic networks: churn / central-node failure).  When the top-K
        central set changes, demoted centrals hand their cached copies
        off toward the new centrals through the ordinary push gradient.
        Off by default — the paper's administrator elects NCLs once.
    """

    num_ncls: int = 8
    ncl_time_budget: Optional[float] = None
    #: k of the k-NN truncated NCL metric (sparse scale-out path).
    #: ``None`` keeps the exact dense metric on dense graphs and the
    #: default truncation (:data:`repro.core.ncl.DEFAULT_KNN_K`) on
    #: sparse ones; setting it forces truncation everywhere.
    knn_k: Optional[int] = None
    response_strategy: str = "sigmoid"
    p_min: float = 0.45
    p_max: float = 0.8
    probabilistic_selection: bool = True
    path_mode: PathMode = PathMode.EXPECTED_DELAY
    fresh_exemption_fraction: float = 0.25
    #: how central nodes are picked: "metric" (Eq. 3, the paper) or one of
    #: the ablation strategies of :data:`repro.core.ncl.SELECTION_STRATEGIES`
    selection_strategy: str = "metric"
    reelect: bool = False

    def __post_init__(self) -> None:
        if self.num_ncls < 1:
            raise ConfigurationError("num_ncls must be >= 1")
        if self.ncl_time_budget is not None and self.ncl_time_budget <= 0:
            raise ConfigurationError("ncl_time_budget must be positive")
        if self.knn_k is not None and self.knn_k < 1:
            raise ConfigurationError("knn_k must be >= 1")
        if self.response_strategy not in ("sigmoid", "path_aware", "always"):
            raise ConfigurationError(
                f"unknown response strategy {self.response_strategy!r}"
            )
        if not 0.0 <= self.fresh_exemption_fraction <= 1.0:
            raise ConfigurationError("fresh_exemption_fraction must be in [0, 1]")
        if self.selection_strategy not in SELECTION_STRATEGIES:
            raise ConfigurationError(
                f"unknown selection strategy {self.selection_strategy!r}"
            )


class IntentionalCaching(CachingScheme):
    """NCL-based cooperative caching — the paper's proposed scheme."""

    name = "intentional"

    def __init__(
        self,
        config: Optional[IntentionalConfig] = None,
        replacement: Optional[ReplacementPolicy] = None,
    ):
        super().__init__()
        self.config = config or IntentionalConfig()
        self.replacement = replacement or UtilityKnapsackPolicy(
            probabilistic=self.config.probabilistic_selection
        )
        self.selection: Optional[NCLSelection] = None
        #: the T actually used (set at warm-up; equals the config value
        #: unless the adaptive rule ran)
        self.ncl_time_budget: Optional[float] = self.config.ncl_time_budget
        self._push_router: Optional[GradientRouter] = None
        self._query_router: Optional[GradientRouter] = None
        #: set by :meth:`on_topology_changed`; re-election only runs on
        #: the refresh that follows an actual join/leave/failure, so
        #: static stretches of a run never pay the selection pass.
        self._topology_dirty = False

    # --- lifecycle ---------------------------------------------------------

    def on_warmup_complete(self, now: float) -> None:
        """Administrator step: select NCLs from the warmed-up graph."""
        if self.graph is None:
            raise RuntimeError("warm-up ended without a contact-graph snapshot")
        horizon = self.config.ncl_time_budget
        if horizon is None:
            # Sec. IV-B: T is chosen adaptively so that metric values are
            # well differentiated.
            horizon = calibrate_time_budget(
                self.graph,
                mode=self.config.path_mode,
                sample_sources=min(40, self.graph.num_nodes),
            )
        self.ncl_time_budget = horizon
        self.selection = select_ncls_by(
            self.graph,
            self.config.num_ncls,
            horizon,
            strategy=self.config.selection_strategy,
            mode=self.config.path_mode,
            knn_k=self.config.knn_k,
        )
        # Pushes and query multicast copies are single-copy gradient
        # handovers (Sec. V-A: the relay "deletes its own data copy
        # afterwards"); central nodes are hubs, so single copies reach
        # them reliably.
        self._push_router = GradientRouter(horizon=horizon, mode=self.config.path_mode)
        self._query_router = GradientRouter(
            horizon=horizon, mode=self.config.path_mode, replicate=False
        )
        self._push_router.update_graph(self.graph)
        self._query_router.update_graph(self.graph)
        observer = self.route_observer()
        self._push_router.set_observer(observer)
        self._query_router.set_observer(observer)
        if self.config.response_strategy == "sigmoid":
            self.set_response_strategy(
                SigmoidResponse(self.config.p_min, self.config.p_max)
            )
        elif self.config.response_strategy == "path_aware":
            strategy = PathAwareResponse(self.graph, mode=self.config.path_mode)
            self.set_response_strategy(strategy)
        else:
            self.set_response_strategy(AlwaysRespond())

    def on_graph_updated(self, graph: ContactGraph, now: float) -> None:
        super().on_graph_updated(graph, now)
        if self._push_router is not None:
            self._push_router.update_graph(graph)
        if self._query_router is not None:
            self._query_router.update_graph(graph)
        if isinstance(self._response_strategy, PathAwareResponse):
            self._response_strategy.update_graph(graph)
        if self.config.reelect and self._topology_dirty and self.selection is not None:
            self._topology_dirty = False
            with maybe_span(self._require_services().profiler, "scheme.reelection"):
                self._reelect(graph, now)

    def on_topology_changed(self, now: float) -> None:
        self._topology_dirty = True

    def _reelect(self, graph: ContactGraph, now: float) -> None:
        """Re-run NCL selection against the refreshed graph (Sec. IV's
        administrator step, repeated for dynamic networks).

        Only runs on the refresh following a topology change (see
        ``on_topology_changed``), and a stable top-K set keeps the
        established selection wholesale — a dynamics event that does not
        move the committee costs one selection pass and no state churn.
        When the committee changes, each demoted central hands
        its cached copies off as ordinary push bundles toward the new
        central nearest to it — migration rides the existing gradient
        rather than teleporting data.
        """
        services = self._require_services()
        old = self._require_selection()
        horizon = self.ncl_time_budget
        assert horizon is not None  # set at warm-up before reelection can run
        new = select_ncls_by(
            graph,
            self.config.num_ncls,
            horizon,
            strategy=self.config.selection_strategy,
            mode=self.config.path_mode,
            knn_k=self.config.knn_k,
        )
        services.count("scheme.reelection_rounds")
        old_set = {int(c) for c in old.central_nodes}
        new_set = {int(c) for c in new.central_nodes}
        if new_set == old_set:
            return
        self.selection = new
        demoted = sorted(old_set - new_set)
        promoted = sorted(new_set - old_set)
        services.count("scheme.reelections")
        if services.recorder.enabled:
            services.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.NCL_REELECTED,
                    attrs={
                        "old": [int(c) for c in old.central_nodes],
                        "new": [int(c) for c in new.central_nodes],
                        "demoted": demoted,
                        "promoted": promoted,
                    },
                )
            )
        migrated = 0
        for central in demoted:
            holder = services.nodes[central]
            target = int(new.nearest_central[central])
            for item in holder.buffer.items():
                if item.is_expired(now):
                    continue
                # owns_copy: the demoted central's copy belongs to this
                # migration — the first handover takes it along instead of
                # duplicating it, so the copy *moves* toward the new NCL.
                bundle = PushBundle(
                    created_at=now,
                    expires_at=item.expires_at,
                    data=item,
                    target_central=target,
                    owns_copy=True,
                )
                if not holder.store_bundle(bundle):
                    continue
                migrated += 1
                if services.recorder.enabled:
                    services.recorder.emit(
                        TraceEvent(
                            time=now,
                            kind=TraceEventKind.CACHE_MIGRATED,
                            node=central,
                            data_id=item.data_id,
                            attrs={"from_central": central, "to_central": target},
                        )
                    )
        if migrated:
            services.count("scheme.cache_migrations", migrated)

    def on_cache_hit(self, node: Node, data: DataItem, now: float) -> None:
        """Feed accesses to recency/aging replacement policies (LRU, GDS)
        so the Fig. 12 comparison exercises their actual behaviour."""
        record_access = getattr(self.replacement, "record_access", None)
        if record_access is not None:
            record_access(data.data_id, now)
        refresh = getattr(self.replacement, "refresh", None)
        if refresh is not None:
            refresh(data)

    def _require_selection(self) -> NCLSelection:
        if self.selection is None:
            raise RuntimeError("NCL selection has not run (warm-up not complete)")
        return self.selection

    # --- push (Sec. V-A) ---------------------------------------------------

    def on_data_generated(self, node: Node, data: DataItem, now: float) -> None:
        """Emit one push bundle per NCL; the source keeps its origin copy."""
        selection = self._require_selection()
        for central in selection.central_nodes:
            bundle = PushBundle(
                created_at=now,
                expires_at=data.expires_at,
                data=data,
                target_central=central,
            )
            node.store_bundle(bundle)
        # Data the source just created may already answer queries it saw.
        self.answer_pending_queries(node, data.data_id, now)

    def _process_pushes(
        self, x: Node, y: Node, now: float, budget: TransferBudget
    ) -> None:
        """Advance x's push bundles through y along the central gradient."""
        services = self._require_services()
        if self.graph is None or self._push_router is None:
            return
        for bundle in x.bundles:
            if not isinstance(bundle, PushBundle):
                continue
            if bundle.is_expired(now):
                x.drop_bundle(bundle.key)
                continue
            # A push is only alive while its carrier still holds the data
            # (source origin copy or cached copy); replacement may have
            # migrated the data away, orphaning the bundle.
            if x.find_data(bundle.data.data_id, now) is None:
                x.drop_bundle(bundle.key)
                continue
            if bundle.spilling:
                self._spill_push(x, y, bundle, now, budget)
                continue
            decision = self._push_router.decide(
                x.node_id,
                y.node_id,
                bundle.target_central,
                self.graph,
                bundle.data.remaining_lifetime(now),
            )
            if not decision.transfers or y.has_seen(bundle.key):
                continue
            already_cached = y.find_data(bundle.data.data_id, now) is not None
            cost = 0 if already_cached else bundle.size_bits
            if not budget.can_afford(cost):
                continue
            if not already_cached and not y.buffer.fits(bundle.data):
                if y.node_id == bundle.target_central:
                    # "If the buffer of a central node is full, data is
                    # cached at another node near the central node": keep
                    # the bundle and spill into the NCL's member nodes.
                    bundle.spilling = True
                elif bundle.owns_copy:
                    # Sec. V-A: the next relay's buffer is full -> the
                    # data stays cached at the current relay for good,
                    # becoming a resident copy no other push may remove.
                    x.drop_bundle(bundle.key)
                    self._release_ownership(x, bundle.data.data_id)
                # A carrier whose copy is shared (source origin, or a
                # relay another push already supplied) has not placed this
                # push's own copy yet; it keeps waiting for a relay with
                # room instead of dying.
                continue
            budget.try_consume(cost)
            if not already_cached:
                y.buffer.put(bundle.data)
                # The previous relay was only a temporal caching location
                # for this push; an independently held copy (origin data,
                # another NCL's completed push, replacement placement)
                # stays put.
                if bundle.owns_copy:
                    x.buffer.remove(bundle.data.data_id)
            x.drop_bundle(bundle.key)
            bundle.owns_copy = not already_cached
            self._emit_push_forwarded(x, y, bundle, now)
            if y.node_id == bundle.target_central:
                services.metrics.on_push_completed()
                self._emit_push_completed(y, bundle, now, spilled=False)
                # The copy at the central is now resident: other pushes
                # relaying the same data through this node must not take
                # it with them.
                self._release_ownership(y, bundle.data.data_id)
            else:
                y.store_bundle(bundle)
            # New caching location may answer queries it already observed.
            self.answer_pending_queries(y, bundle.data.data_id, now)

    def _emit_push_forwarded(
        self, x: Node, y: Node, bundle: PushBundle, now: float
    ) -> None:
        """Trace hook: custody of a push copy moved from *x* to *y*."""
        services = self._require_services()
        if services.recorder.enabled:
            services.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.PUSH_FORWARDED,
                    node=y.node_id,
                    data_id=bundle.data.data_id,
                    attrs={
                        "carrier": x.node_id,
                        "target_central": bundle.target_central,
                    },
                )
            )

    def _emit_push_completed(
        self, node: Node, bundle: PushBundle, now: float, spilled: bool
    ) -> None:
        """Trace hook: a push copy settled inside its target NCL."""
        services = self._require_services()
        if services.recorder.enabled:
            services.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.PUSH_COMPLETED,
                    node=node.node_id,
                    data_id=bundle.data.data_id,
                    attrs={"target_central": bundle.target_central, "spilled": spilled},
                )
            )

    @staticmethod
    def _release_ownership(node: Node, data_id: int) -> None:
        """Mark the copy of *data_id* at *node* resident: any in-flight
        push bundle at this node carrying the same data loses its claim
        and will not remove the copy when it moves on."""
        for bundle in node.bundles:
            if isinstance(bundle, PushBundle) and bundle.data.data_id == data_id:
                bundle.owns_copy = False

    def _spill_push(
        self,
        x: Node,
        y: Node,
        bundle: PushBundle,
        now: float,
        budget: TransferBudget,
    ) -> None:
        """Place a spilling push's copy at a member of the target NCL.

        The central node could not cache the data; the first encountered
        member of its NCL with room becomes the caching location
        (Sec. V: "data is cached at another node A near C1").
        """
        services = self._require_services()
        if self._ncl_of(y.node_id) != bundle.target_central:
            return
        if y.find_data(bundle.data.data_id, now) is not None:
            # The NCL already holds a copy elsewhere; this push is done.
            x.drop_bundle(bundle.key)
            services.metrics.on_push_completed()
            self._emit_push_completed(y, bundle, now, spilled=True)
            return
        if not y.buffer.fits(bundle.data):
            return
        if not budget.try_consume(bundle.data.size):
            return
        y.buffer.put(bundle.data)
        if bundle.owns_copy:
            x.buffer.remove(bundle.data.data_id)
        x.drop_bundle(bundle.key)
        services.metrics.on_push_completed()
        self._emit_push_forwarded(x, y, bundle, now)
        self._emit_push_completed(y, bundle, now, spilled=True)
        self._release_ownership(y, bundle.data.data_id)
        self.answer_pending_queries(y, bundle.data.data_id, now)

    # --- pull (Sec. V-B) ---------------------------------------------------

    def on_query_generated(self, node: Node, query: Query, now: float) -> None:
        """Multicast the query: one gradient copy per central node."""
        with maybe_span(self._require_services().profiler, "scheme.query_multicast"):
            self._multicast_query(node, query, now)

    def _multicast_query(self, node: Node, query: Query, now: float) -> None:
        selection = self._require_selection()
        node.observe_query(query, now)
        for central in selection.central_nodes:
            bundle = QueryBundle(
                created_at=now,
                expires_at=query.expires_at,
                query=query,
                target_central=central,
            )
            if central == node.node_id:
                bundle.broadcasting = True
            node.store_bundle(bundle)
        # The requester might itself serve the data (e.g. freshly cached);
        # the workload avoids this, but the scheme stays correct if not.
        self.try_respond(node, query, now)

    def _ncl_of(self, node_id: int) -> int:
        return int(self._require_selection().nearest_central[node_id])

    def _process_queries(
        self, x: Node, y: Node, now: float, budget: TransferBudget
    ) -> None:
        """Advance x's query bundles: gradient toward the central node,
        then NCL-wide broadcast after arrival (Sec. V-B)."""
        if self.graph is None or self._query_router is None:
            return
        for bundle in x.bundles:
            if not isinstance(bundle, QueryBundle):
                continue
            if bundle.is_expired(now):
                x.drop_bundle(bundle.key)
                continue
            target = bundle.target_central
            assert target is not None  # intentional scheme always sets it
            if bundle.broadcasting:
                # Replicate among the target NCL's member nodes.
                if self._ncl_of(y.node_id) != target or y.has_seen(bundle.key):
                    continue
                if not budget.try_consume(bundle.size_bits):
                    continue
                replica = QueryBundle(
                    created_at=bundle.created_at,
                    expires_at=bundle.expires_at,
                    query=bundle.query,
                    target_central=target,
                    broadcasting=True,
                )
                y.store_bundle(replica)
                self._receive_query(y, bundle.query, now)
            else:
                decision = self._query_router.decide(
                    x.node_id, y.node_id, target, self.graph, bundle.query.remaining(now)
                )
                if not decision.transfers or y.has_seen(bundle.key):
                    continue
                if not budget.try_consume(bundle.size_bits):
                    continue
                replica = QueryBundle(
                    created_at=bundle.created_at,
                    expires_at=bundle.expires_at,
                    query=bundle.query,
                    target_central=target,
                    broadcasting=(y.node_id == target),
                )
                if decision.action is ForwardAction.HANDOVER:
                    x.drop_bundle(bundle.key)
                y.store_bundle(replica)
                self._receive_query(y, bundle.query, now)

    def _receive_query(self, node: Node, query: Query, now: float) -> None:
        """A node received a query copy: record history, try to serve it."""
        node.observe_query(query, now)
        self.try_respond(node, query, now)

    # --- replacement (Sec. V-D) --------------------------------------------

    def _utility_fn(self, node: Node, now: float) -> Callable[[DataItem], float]:
        """uᵢ at *node*: popularity (Eq. 6) × path weight to its NCL."""
        selection = self._require_selection()
        weight = selection.best_weight(node.node_id)

        def utility(item: DataItem) -> float:
            return node.popularity.popularity(item.data_id, item.expires_at) * weight

        return utility

    def _fresh_fn(self, node: Node, now: float) -> Callable[[DataItem], bool]:
        """Footnote 4 predicate: never-requested data early in its life."""
        fraction = self.config.fresh_exemption_fraction

        def fresh(item: DataItem) -> bool:
            return (
                node.popularity.request_count(item.data_id) == 0
                and now - item.created_at < fraction * item.lifetime
            )

        return fresh

    def _process_replacement(
        self, x: Node, y: Node, now: float, budget: TransferBudget
    ) -> None:
        """Run the pairwise exchange when both nodes hold cached data."""
        services = self._require_services()
        if len(x.buffer) == 0 or len(y.buffer) == 0:
            return
        selection = self._require_selection()
        # Node A (selects first) is the one closer to its central node.
        if selection.best_weight(x.node_id) >= selection.best_weight(y.node_id):
            node_a, node_b = x, y
        else:
            node_a, node_b = y, x
        before_a = node_a.buffer.items()
        before_b = node_b.buffer.items()
        context = ExchangeContext(
            now=now,
            utility_a=self._utility_fn(node_a, now),
            utility_b=self._utility_fn(node_b, now),
            rng=services.rng,
            exempt_a=self._fresh_fn(node_a, now),
            exempt_b=self._fresh_fn(node_b, now),
            # Coordination (duplicate merging) applies within one NCL;
            # nodes of different NCLs each keep their NCL's own copy.
            dedup=self._ncl_of(node_a.node_id) == self._ncl_of(node_b.node_id),
        )
        result = self.replacement.exchange(node_a.buffer, node_b.buffer, context)
        if result.bits_transferred > budget.remaining:
            # The contact is too short to move that much data: roll back.
            node_a.buffer.clear()
            node_b.buffer.clear()
            for item in before_a:
                node_a.buffer.put(item)
            for item in before_b:
                node_b.buffer.put(item)
            return
        budget.try_consume(result.bits_transferred)
        services.metrics.on_exchange(result.moved, result.bits_transferred)
        # Sec. V-D invariant: a refill can never overfill either buffer.
        check_buffer_occupancy((node_a, node_b))
        if services.recorder.enabled:
            services.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.EXCHANGE,
                    node=node_a.node_id,
                    attrs={
                        "peer": node_b.node_id,
                        "moved": result.moved,
                        "dropped": [d.data_id for d in result.dropped],
                        "bits": result.bits_transferred,
                    },
                )
            )
        # Replacement now owns the placement of everything it touched:
        # in-flight pushes must not remove these copies, and data that
        # migrated may answer queries its new holder observed.
        for item in result.kept_a:
            self._release_ownership(node_a, item.data_id)
            self.answer_pending_queries(node_a, item.data_id, now)
        for item in result.kept_b:
            self._release_ownership(node_b, item.data_id)
            self.answer_pending_queries(node_b, item.data_id, now)

    # --- contact dispatch ----------------------------------------------

    def on_contact(self, a: Node, b: Node, now: float, budget: TransferBudget) -> None:
        self.housekeeping(a, now)
        self.housekeeping(b, now)
        # Deliveries first (most valuable per bit), then control traffic,
        # then bulk movement.  ``maybe_span`` degrades to a shared no-op
        # context when profiling is off, so one sequence serves both modes.
        prof = self._require_services().profiler
        with maybe_span(prof, "scheme.responses"):
            self.process_responses(a, b, now, budget)
            self.process_responses(b, a, now, budget)
        with maybe_span(prof, "scheme.queries"):
            self._process_queries(a, b, now, budget)
            self._process_queries(b, a, now, budget)
        with maybe_span(prof, "scheme.pushes"):
            self._process_pushes(a, b, now, budget)
            self._process_pushes(b, a, now, budget)
        with maybe_span(prof, "scheme.replacement"):
            self._process_replacement(a, b, now, budget)
