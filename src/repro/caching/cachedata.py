"""CacheData baseline — cooperative caching for wireless ad-hoc networks
(Yin & Cao [29]), transplanted to DTNs as the paper does (Sec. VI).

In CacheData, intermediate nodes on the reply path cache pass-by data
*if it is popular enough* by their locally observed query history.  The
paper's point is that this works poorly in DTNs: queries and replies take
different opportunistic routes, so relays see a fragmentary query history
and mis-estimate popularity.

Reimplementation (documented in DESIGN.md): a relay taking over a
response bundle caches the data iff it has itself observed at least
``popularity_threshold`` distinct queries for it; eviction is LRU, as in
the original CacheData design.
"""

from __future__ import annotations

from repro.core.data import DataItem
from repro.core.replacement import LRUPolicy
from repro.errors import ConfigurationError
from repro.sim.bundles import ResponseBundle
from repro.sim.node import Node
from repro.caching.incidental import IncidentalScheme

__all__ = ["CacheData"]


class CacheData(IncidentalScheme):
    """Relays cache pass-by reply data when locally observed popularity
    passes a threshold."""

    name = "cachedata"

    def __init__(self, popularity_threshold: int = 2):
        super().__init__()
        if popularity_threshold < 1:
            raise ConfigurationError("popularity_threshold must be >= 1")
        self.popularity_threshold = int(popularity_threshold)
        self._lru = LRUPolicy()

    def _is_popular(self, node: Node, data: DataItem) -> bool:
        return (
            node.popularity.request_count(data.data_id) >= self.popularity_threshold
        )

    def on_response_relayed(self, relay: Node, bundle: ResponseBundle, now: float) -> None:
        if relay.find_data(bundle.data.data_id, now) is not None:
            return
        if self._is_popular(relay, bundle.data):
            self._lru.record_access(bundle.data.data_id, now)
            self._lru.admit(relay.buffer, bundle.data, now)
            self.answer_pending_queries(relay, bundle.data.data_id, now)
