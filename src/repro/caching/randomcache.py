"""RandomCache baseline (Sec. VI): "every requester caches the received
data to facilitate data access in the future", with LRU replacement.

Requesters are randomly distributed, so the cached copies end up at
random network locations — the paper's argument for why this scheme
burns the most buffer (≈5 copies per item at T_L = 3 months in
Fig. 10c) while helping little.
"""

from __future__ import annotations

from repro.core.data import DataItem, Query
from repro.core.replacement import LRUPolicy
from repro.sim.node import Node
from repro.caching.incidental import IncidentalScheme

__all__ = ["RandomCache"]


class RandomCache(IncidentalScheme):
    """Requesters cache what they receive; LRU eviction."""

    name = "randomcache"

    def __init__(self) -> None:
        super().__init__()
        self._lru = LRUPolicy()

    def on_data_delivered(self, node: Node, data: DataItem, query: Query, now: float) -> None:
        self._lru.record_access(data.data_id, now)
        self._lru.admit(node.buffer, data, now)
        self.answer_pending_queries(node, data.data_id, now)
