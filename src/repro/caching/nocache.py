"""NoCache baseline (Sec. VI): "caching is not used for data access, and
each query result is returned only by the data source."

Queries flood the network; only the source holds the data (nothing is
ever cached), so every response originates there.  This is the floor the
paper reports a ~200% successful-ratio improvement over.
"""

from __future__ import annotations

from repro.caching.incidental import IncidentalScheme

__all__ = ["NoCache"]


class NoCache(IncidentalScheme):
    """No caching anywhere; the origin store is the only data holder."""

    name = "nocache"
