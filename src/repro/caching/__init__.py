"""Caching schemes: the paper's intentional NCL scheme and its baselines.

Evaluated head-to-head in Sec. VI:

* :class:`~repro.caching.intentional.IntentionalCaching` — the paper's
  contribution (push to NCLs, probabilistic pull, utility-knapsack
  replacement).
* :class:`~repro.caching.nocache.NoCache` — queries answered only by the
  data source.
* :class:`~repro.caching.randomcache.RandomCache` — every requester
  caches what it receives.
* :class:`~repro.caching.cachedata.CacheData` — incidental caching of
  popular pass-by data (wireless ad-hoc cooperative caching, [29]).
* :class:`~repro.caching.bundlecache.BundleCache` — contact-pattern-aware
  incidental bundle caching ([23]).
"""

from repro.caching.base import CachingScheme, SchemeServices
from repro.caching.bundlecache import BundleCache
from repro.caching.cachedata import CacheData
from repro.caching.intentional import IntentionalCaching, IntentionalConfig
from repro.caching.nocache import NoCache
from repro.caching.randomcache import RandomCache

__all__ = [
    "CachingScheme",
    "SchemeServices",
    "IntentionalCaching",
    "IntentionalConfig",
    "NoCache",
    "RandomCache",
    "CacheData",
    "BundleCache",
]


def scheme_by_name(name: str, **kwargs) -> CachingScheme:
    """Factory used by experiment configs: build a scheme from its name."""
    registry = {
        IntentionalCaching.name: IntentionalCaching,
        NoCache.name: NoCache,
        RandomCache.name: RandomCache,
        CacheData.name: CacheData,
        BundleCache.name: BundleCache,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise KeyError(f"unknown scheme {name!r}; available: {sorted(registry)}") from None
    return cls(**kwargs)
