"""Caching-scheme interface and the contact machinery all schemes share.

A scheme reacts to four simulator callbacks — data generation, query
generation, contacts, and deliveries — through the narrow
:class:`SchemeServices` facade the simulator hands it at attach time.

The heavy lifting common to every scheme lives here:

* housekeeping (expiry of data, queries, and bundles);
* delivering response bundles when the carrier meets the requester;
* forwarding response bundles along the path-weight gradient toward the
  requester ("any existing data forwarding protocol", Sec. V-B);
* emitting responses when a node that observed a query can serve it, and
  the symmetric push/pull conjunction: a node that *receives* data while
  holding a matching active query responds as well (Sec. V's "push and
  pull caching strategies conjoin at the NCLs").

Subclasses define how queries disseminate, where data gets cached, and
which replacement policy runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.data import DataItem, Query
from repro.core.response import AlwaysRespond, ResponseStrategy
from repro.graph.contact_graph import ContactGraph
from repro.metrics.collector import MetricsCollector
from repro.obs.events import TraceEvent, TraceEventKind
from repro.obs.primitives import MetricsRegistry
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.routing.base import DecisionObserver, ForwardAction, ForwardDecision
from repro.routing.rate_gradient import RateGradientRouter
from repro.sim.bundles import ResponseBundle
from repro.sim.network import TransferBudget
from repro.sim.node import Node

__all__ = ["SchemeServices", "CachingScheme"]


@dataclass
class SchemeServices:
    """Facade over the simulator, given to a scheme at attach time.

    Attributes
    ----------
    nodes:
        All node states, indexed by node id.
    rng:
        The scheme's private random stream.
    metrics:
        The run's metric collector.
    deliver:
        Callback ``deliver(query, data, now)`` the scheme invokes when the
        requester receives a data copy; the simulator records satisfaction
        and re-enters the scheme through ``on_data_delivered``.
    lookup_data:
        ``lookup_data(data_id) -> DataItem | None`` — the global data
        catalogue.  Used by the baselines to address queries at the data
        source (in deployments, source identity is embedded in the data
        id); the intentional scheme never consults it.
    response_horizon:
        Default horizon (seconds) for the response-routing gradient —
        the workload's query time constraint.
    recorder:
        The run's lifecycle trace sink (``NULL_RECORDER`` when tracing
        is off; every emit site guards on ``recorder.enabled``).
    clock:
        ``() -> float`` returning the current simulation time, for hooks
        that fire outside a timestamped callback (router observers).
    profiler:
        The run's phase profiler (``NULL_PROFILER`` when profiling is
        off; every span site guards on ``profiler.enabled``).
    registry:
        The run's aggregate instrument registry; schemes bump counters
        (e.g. re-election rounds) through it.  ``None`` keeps older
        hand-built services working; use :meth:`counter` to tolerate it.
    """

    nodes: Sequence[Node]
    rng: np.random.Generator
    metrics: MetricsCollector
    deliver: Callable[[Query, DataItem, float], None]
    lookup_data: Callable[[int], Optional[DataItem]]
    response_horizon: float
    recorder: TraceRecorder = NULL_RECORDER
    clock: Optional[Callable[[], float]] = None
    profiler: Profiler = NULL_PROFILER
    registry: Optional[MetricsRegistry] = None

    def count(self, name: str, value: int = 1) -> None:
        """Bump counter *name* if a registry is attached (no-op otherwise)."""
        if self.registry is not None:
            self.registry.counter(name).inc(value)


class CachingScheme(abc.ABC):
    """Base class for all caching schemes."""

    #: scheme name used in configs, reports and figures
    name: str = "abstract"

    def __init__(self) -> None:
        self.services: Optional[SchemeServices] = None
        self.graph: Optional[ContactGraph] = None
        self._response_router: Optional[RateGradientRouter] = None
        self._response_strategy: ResponseStrategy = AlwaysRespond()

    # --- simulator lifecycle ---------------------------------------------

    def attach(self, services: SchemeServices) -> None:
        """Receive the simulator facade; called once before warm-up ends.

        Responses return by "any existing data forwarding protocol"
        (Sec. V-B) — modelled for *every* scheme as local-knowledge
        social forwarding (:class:`RateGradientRouter`), since no node
        maintains administrator-grade path tables toward arbitrary
        requesters.
        """
        self.services = services
        self._response_router = RateGradientRouter()
        self._response_router.set_observer(self.route_observer())

    def route_observer(self) -> Optional[DecisionObserver]:
        """The trace hook routers should call per verdict (None when off).

        Subclasses install this on every router they create (the
        intentional scheme's push/query gradients, for instance) so the
        trace shows why a bundle moved — or stalled — at each contact.
        """
        services = self.services
        if services is None or not services.recorder.enabled:
            return None
        recorder = services.recorder
        clock = services.clock or (lambda: float("nan"))

        def observe(
            carrier: int, peer: int, destination: int, decision: ForwardDecision
        ) -> None:
            recorder.emit(
                TraceEvent(
                    time=clock(),
                    kind=TraceEventKind.ROUTE_DECISION,
                    node=carrier,
                    attrs={
                        "peer": peer,
                        "destination": destination,
                        "action": decision.action.value,
                        "carrier_score": decision.carrier_score,
                        "peer_score": decision.peer_score,
                    },
                )
            )

        return observe

    def on_graph_updated(self, graph: ContactGraph, now: float) -> None:
        """A fresh contact-rate snapshot was published."""
        self.graph = graph
        if self._response_router is not None:
            self._response_router.update_graph(graph)

    def on_warmup_complete(self, now: float) -> None:
        """The first trace half ended; NCL-style setup happens here."""

    def on_topology_changed(self, now: float) -> None:
        """A node joined, left, or failed (network dynamics).

        Fired *before* the same-instant graph refresh, so schemes can
        mark expensive graph-reactions (NCL re-election) as due instead
        of re-running them on every periodic refresh.
        """

    def on_data_delivered(self, node: Node, data: DataItem, query: Query, now: float) -> None:
        """The requester received *data*; RandomCache-style hooks go here."""

    # --- mandatory scheme behaviour --------------------------------------

    @abc.abstractmethod
    def on_data_generated(self, node: Node, data: DataItem, now: float) -> None:
        """A node generated new data."""

    @abc.abstractmethod
    def on_query_generated(self, node: Node, query: Query, now: float) -> None:
        """A node issued a query."""

    @abc.abstractmethod
    def on_contact(self, a: Node, b: Node, now: float, budget: TransferBudget) -> None:
        """Two nodes are in contact with the given transfer budget."""

    # --- shared machinery --------------------------------------------------

    def _require_services(self) -> SchemeServices:
        if self.services is None:
            raise RuntimeError(f"scheme {self.name!r} used before attach()")
        return self.services

    def housekeeping(self, node: Node, now: float) -> None:
        """Expire data, queries and bundles on *node*."""
        node.expire_data(now)
        node.expire_queries(now)
        node.drop_expired_bundles(now)

    # .. responses ........................................................

    def set_response_strategy(self, strategy: ResponseStrategy) -> None:
        self._response_strategy = strategy

    def try_respond(self, node: Node, query: Query, now: float) -> bool:
        """Emit a response from *node* for *query* if possible.

        A node responds at most once per query, must actually hold the
        data, and passes its response strategy's probabilistic decision
        (Sec. V-C).  A refusal is final for this node — the paper's
        caching nodes decide once per received query.
        """
        services = self._require_services()
        if query.query_id in node.responded_queries or query.is_expired(now):
            return False
        data = node.find_data(query.data_id, now)
        # Each first serving attempt is one cache lookup; a hit means a
        # *cached* copy answers (origin copies at the source don't count).
        services.metrics.on_cache_lookup(
            data is not None and data.data_id in node.buffer
        )
        if data is None:
            return False
        if data.data_id in node.buffer:
            # A cache hit: refresh recency state so LRU/GDS replacement
            # sees real access patterns.
            node.buffer.get(data.data_id)
            self.on_cache_hit(node, data, now)
        node.responded_queries.add(query.query_id)
        decision = self._response_strategy.decide(query, now, node.node_id, services.rng)
        if services.recorder.enabled:
            services.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.RESPONSE_DECIDED,
                    node=node.node_id,
                    data_id=data.data_id,
                    query_id=query.query_id,
                    attrs={
                        "respond": decision.respond,
                        "probability": decision.probability,
                        "strategy": decision.strategy,
                    },
                )
            )
        if not decision.respond:
            return False
        if node.node_id == query.requester:
            services.deliver(query, data, now)
            return True
        bundle = ResponseBundle(
            created_at=now,
            expires_at=query.expires_at,
            data=data,
            query=query,
            responder=node.node_id,
        )
        node.store_bundle(bundle)
        services.metrics.on_response_emitted()
        if services.recorder.enabled:
            services.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.RESPONSE_EMITTED,
                    node=node.node_id,
                    data_id=data.data_id,
                    query_id=query.query_id,
                    attrs={"sequence": bundle.sequence},
                )
            )
        return True

    def answer_pending_queries(self, node: Node, data_id: int, now: float) -> None:
        """Push/pull conjunction: data just arrived at *node*; respond to
        the active queries for it this node has already observed."""
        for query in node.pending_queries_for(data_id, now):
            self.try_respond(node, query, now)

    def process_responses(
        self, x: Node, y: Node, now: float, budget: TransferBudget
    ) -> None:
        """Deliver/forward the response bundles carried by *x* toward *y*.

        Delivery (y is the requester) takes precedence, then gradient
        forwarding.  Call symmetrically for both contact directions.
        """
        services = self._require_services()
        for bundle in x.bundles:
            if not isinstance(bundle, ResponseBundle):
                continue
            if bundle.is_expired(now) or services.metrics.is_satisfied(
                bundle.query.query_id
            ):
                x.drop_bundle(bundle.key)
                continue
            if y.node_id == bundle.query.requester:
                if budget.try_consume(bundle.size_bits):
                    x.drop_bundle(bundle.key)
                    services.metrics.on_response_delivered()
                    if services.recorder.enabled:
                        services.recorder.emit(
                            TraceEvent(
                                time=now,
                                kind=TraceEventKind.RESPONSE_DELIVERED,
                                node=y.node_id,
                                data_id=bundle.data.data_id,
                                query_id=bundle.query.query_id,
                                attrs={
                                    "carrier": x.node_id,
                                    "responder": bundle.responder,
                                    "sequence": bundle.sequence,
                                },
                            )
                        )
                    services.deliver(bundle.query, bundle.data, now)
                continue
            if self.graph is None or self._response_router is None:
                continue
            decision = self._response_router.decide(
                x.node_id,
                y.node_id,
                bundle.query.requester,
                self.graph,
                bundle.query.remaining(now),
            )
            if decision.transfers and not y.has_seen(bundle.key):
                if budget.try_consume(bundle.size_bits):
                    if decision.action is ForwardAction.HANDOVER:
                        x.drop_bundle(bundle.key)
                    y.store_bundle(bundle)
                    if services.recorder.enabled:
                        services.recorder.emit(
                            TraceEvent(
                                time=now,
                                kind=TraceEventKind.RESPONSE_FORWARDED,
                                node=y.node_id,
                                data_id=bundle.data.data_id,
                                query_id=bundle.query.query_id,
                                attrs={
                                    "carrier": x.node_id,
                                    "action": decision.action.value,
                                    "responder": bundle.responder,
                                    "sequence": bundle.sequence,
                                },
                            )
                        )
                    self.on_response_relayed(y, bundle, now)

    def on_response_relayed(self, relay: Node, bundle: ResponseBundle, now: float) -> None:
        """Hook: a relay just took over a response bundle.  Incidental
        caching schemes (CacheData, BundleCache) cache pass-by data here."""

    def on_cache_hit(self, node: Node, data: DataItem, now: float) -> None:
        """Hook: a cached item just served a query.  Schemes whose
        replacement policy tracks recency (LRU) or aging (GDS) forward
        the access here."""

    # .. convenience -----------------------------------------------------

    @property
    def nodes(self) -> Sequence[Node]:
        return self._require_services().nodes

    def node(self, node_id: int) -> Node:
        return self._require_services().nodes[node_id]

    def cached_copy_count(self, now: float) -> int:
        """Total unexpired cached copies across all buffers (overhead metric)."""
        total = 0
        for node in self._require_services().nodes:
            total += sum(1 for d in node.buffer.items() if not d.is_expired(now))
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"
