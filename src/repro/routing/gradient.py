"""Weight-gradient (delegation) forwarding — the paper's push/pull relay rule.

Sec. V-A: "we use the opportunistic path weight to the central node as
the relay selection metric ... A relay forwards data to another node with
higher metric than itself, and deletes its own data copy afterwards",
which probabilistically shortens the remaining delay at every hop.

Each node maintains its shortest-opportunistic-path weight to every
destination it routes toward (the paper's nodes maintain exactly this for
the central nodes).  Weight vectors come from the process-wide
:mod:`repro.graph.weight_cache`, keyed on graph content — so the push and
query routers of one scheme (and the NCL selection that preceded them)
share a single computation per (graph, destination, horizon) instead of
each maintaining private tables.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import PathMode
from repro.graph.weight_cache import shared_weight_cache
from repro.routing.base import ForwardAction, ForwardDecision, ObservableRouter

__all__ = ["GradientRouter"]


class GradientRouter(ObservableRouter):
    """Unicast by climbing the path-weight gradient toward the destination.

    Parameters
    ----------
    horizon:
        Time budget T at which path weights are evaluated (the paper uses
        a per-trace T, Sec. IV-B).  Weights are *maintained tables*, so
        the horizon is fixed per router rather than per bundle.
    mode:
        Shortest-path objective (see :class:`repro.graph.paths.PathMode`).
    replicate:
        When ``True`` the carrier keeps its copy after forwarding
        (multi-copy gradient); the paper's push deletes the carrier copy,
        so the default is single-copy handover.
    """

    name = "gradient"

    def __init__(
        self,
        horizon: float,
        mode: PathMode = PathMode.EXPECTED_DELAY,
        replicate: bool = False,
    ):
        if horizon <= 0:
            raise ConfigurationError("gradient horizon must be positive")
        self._horizon = float(horizon)
        self._mode = mode
        self._replicate = replicate

    @property
    def horizon(self) -> float:
        return self._horizon

    def update_graph(self, graph: ContactGraph) -> None:
        """Install a fresh rate snapshot.

        Kept for API symmetry with the other routers: the shared weight
        cache keys on graph content, so a new snapshot needs no explicit
        invalidation here.
        """

    def weight_to(self, node: int, destination: int, graph: ContactGraph) -> float:
        """The maintained path weight from *node* to *destination*."""
        weights = shared_weight_cache().weights(
            graph, destination, self._horizon, self._mode
        )
        return float(weights[node])

    def decide(
        self,
        carrier: int,
        peer: int,
        destination: int,
        graph: ContactGraph,
        time_budget: float,
    ) -> ForwardDecision:
        if peer == destination:
            return self._observe(
                carrier,
                peer,
                destination,
                ForwardDecision(
                    action=ForwardAction.HANDOVER, carrier_score=0.0, peer_score=1.0
                ),
            )
        carrier_score = self.weight_to(carrier, destination, graph)
        peer_score = self.weight_to(peer, destination, graph)
        if peer_score > carrier_score:
            action = (
                ForwardAction.REPLICATE if self._replicate else ForwardAction.HANDOVER
            )
        else:
            action = ForwardAction.KEEP
        return self._observe(
            carrier,
            peer,
            destination,
            ForwardDecision(
                action=action, carrier_score=carrier_score, peer_score=peer_score
            ),
        )
