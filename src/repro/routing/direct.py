"""Direct delivery: hand the bundle only to its destination.

The cheapest (single-copy, zero-relay) strategy and the delay upper
bound; useful as an experimental lower bound and in tests.
"""

from __future__ import annotations

from repro.graph.contact_graph import ContactGraph
from repro.routing.base import ForwardAction, ForwardDecision

__all__ = ["DirectDeliveryRouter"]


class DirectDeliveryRouter:
    """Keep the bundle until the carrier meets the destination itself."""

    name = "direct"

    def decide(
        self,
        carrier: int,
        peer: int,
        destination: int,
        graph: ContactGraph,
        time_budget: float,
    ) -> ForwardDecision:
        if peer == destination:
            return ForwardDecision(
                action=ForwardAction.HANDOVER, carrier_score=0.0, peer_score=1.0
            )
        return ForwardDecision(action=ForwardAction.KEEP)
