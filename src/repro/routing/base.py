"""Router protocol shared by all forwarding strategies."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional, Protocol

from repro.graph.contact_graph import ContactGraph

__all__ = [
    "ForwardAction",
    "ForwardDecision",
    "DecisionObserver",
    "ObservableRouter",
    "Router",
]

#: Observability hook: called with ``(carrier, peer, destination,
#: decision)`` after every routing verdict.  Installed by the tracing
#: layer (see :meth:`repro.caching.base.CachingScheme.attach`); the
#: installer closes over the simulation clock, so routers stay
#: time-agnostic.
DecisionObserver = Callable[[int, int, int, "ForwardDecision"], None]


class ForwardAction(Enum):
    """What the carrier should do with a bundle when meeting a peer."""

    KEEP = "keep"            # carrier retains its copy, peer gets nothing
    HANDOVER = "handover"    # peer receives the bundle, carrier deletes it
    REPLICATE = "replicate"  # peer receives a copy, carrier keeps its own


@dataclass(frozen=True)
class ForwardDecision:
    """A router's verdict plus the score that produced it (for tests)."""

    action: ForwardAction
    carrier_score: float = 0.0
    peer_score: float = 0.0

    @property
    def transfers(self) -> bool:
        return self.action is not ForwardAction.KEEP


class ObservableRouter:
    """Mixin giving a router an optional per-decision trace hook.

    Concrete routers call :meth:`_observe` on every verdict; the hook is
    ``None`` by default so the untraced cost is one attribute test.
    """

    observer: Optional[DecisionObserver] = None

    def set_observer(self, observer: Optional[DecisionObserver]) -> None:
        self.observer = observer

    def _observe(
        self, carrier: int, peer: int, destination: int, decision: "ForwardDecision"
    ) -> "ForwardDecision":
        if self.observer is not None:
            self.observer(carrier, peer, destination, decision)
        return decision


class Router(Protocol):
    """A forwarding strategy for one bundle class.

    Routers are stateless with respect to individual bundles except where
    the strategy itself demands per-bundle state (e.g. spray counters,
    which are carried on the bundle by the caller).
    """

    name: str

    def decide(
        self,
        carrier: int,
        peer: int,
        destination: int,
        graph: ContactGraph,
        time_budget: float,
    ) -> ForwardDecision:
        """Decide the action when *carrier* meets *peer* while holding a
        bundle destined for *destination*.

        ``time_budget`` is the remaining useful lifetime of the bundle —
        the horizon at which path weights are evaluated.
        """
        ...
