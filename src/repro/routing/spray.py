"""Binary Spray-and-Wait [Spyropoulos et al.] — bounded-copy forwarding.

Not used by the paper's scheme itself, but included as the multicast
transport ablation: query multicast can ride spray instead of gradient
copies, trading delivery probability against overhead.  The per-bundle
copy counter lives on the bundle (``copies`` argument), keeping the
router stateless.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.routing.base import ForwardAction, ForwardDecision

__all__ = ["SprayAndWaitRouter"]


class SprayAndWaitRouter:
    """Binary spray: while a bundle carries >1 copies, half are handed to
    each encountered peer; with a single copy it waits for the
    destination (direct delivery)."""

    name = "spray_and_wait"

    def __init__(self, initial_copies: int = 8):
        if initial_copies < 1:
            raise ConfigurationError("initial_copies must be >= 1")
        self.initial_copies = int(initial_copies)

    def split(self, copies: int) -> int:
        """Copies handed to the peer under binary spray."""
        return copies // 2

    def decide(
        self,
        carrier: int,
        peer: int,
        destination: int,
        graph: ContactGraph,
        time_budget: float,
        copies: int = 1,
    ) -> ForwardDecision:
        if peer == destination:
            return ForwardDecision(
                action=ForwardAction.HANDOVER, carrier_score=0.0, peer_score=1.0
            )
        if copies > 1:
            return ForwardDecision(
                action=ForwardAction.REPLICATE,
                carrier_score=float(copies - self.split(copies)),
                peer_score=float(self.split(copies)),
            )
        return ForwardDecision(action=ForwardAction.KEEP)
