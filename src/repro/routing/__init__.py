"""Data-forwarding strategies used by the caching schemes.

The paper builds on standard DTN forwarding primitives rather than
inventing new ones (Sec. V-A/V-B): pushes ride a *gradient* of
opportunistic-path weights toward each central node, queries are
*multicast* to the central nodes (one gradient copy per NCL) and
*broadcast* within an NCL, and responses return "by any existing data
forwarding protocol".  This package implements those primitives:

* :mod:`repro.routing.base` — router protocol and decision records;
* :mod:`repro.routing.gradient` — forward to nodes with a higher path
  weight to the destination (delegation/greedy routing);
* :mod:`repro.routing.epidemic` — unconditional replication;
* :mod:`repro.routing.direct` — source-only delivery (lower bound);
* :mod:`repro.routing.spray` — binary Spray-and-Wait (extension, used by
  ablations).
"""

from repro.routing.base import ForwardDecision, Router
from repro.routing.direct import DirectDeliveryRouter
from repro.routing.rate_gradient import RateGradientRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.gradient import GradientRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.spray import SprayAndWaitRouter

__all__ = [
    "Router",
    "ForwardDecision",
    "GradientRouter",
    "EpidemicRouter",
    "DirectDeliveryRouter",
    "RateGradientRouter",
    "ProphetRouter",
    "SprayAndWaitRouter",
]
