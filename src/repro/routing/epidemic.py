"""Epidemic routing [Vahdat & Becker]: replicate to every encountered node.

The performance ceiling (and cost ceiling) of DTN forwarding; used here
for query dissemination in the incidental-caching baselines and as the
within-NCL broadcast primitive of the intentional scheme (Sec. V-B).
"""

from __future__ import annotations

from repro.graph.contact_graph import ContactGraph
from repro.routing.base import ForwardAction, ForwardDecision

__all__ = ["EpidemicRouter"]


class EpidemicRouter:
    """Replicate a bundle to every peer that does not already hold it.

    Duplicate suppression is the caller's job (the simulator tracks which
    nodes have seen which bundle); the router itself is stateless.
    """

    name = "epidemic"

    def decide(
        self,
        carrier: int,
        peer: int,
        destination: int,
        graph: ContactGraph,
        time_budget: float,
    ) -> ForwardDecision:
        return ForwardDecision(
            action=ForwardAction.REPLICATE, carrier_score=1.0, peer_score=1.0
        )
