"""PRoPHET: Probabilistic Routing Protocol using History of Encounters
and Transitivity (Lindgren, Doria, Schelén).

A classic DTN router, included as an alternative transport substrate:
each node maintains a delivery predictability P(a, b) ∈ [0, 1] toward
every other node, updated by three rules:

* **encounter** — when a meets b:  P(a,b) ← P(a,b) + (1 − P(a,b)) · P_init
* **aging** — over k time units:   P(a,b) ← P(a,b) · γᵏ
* **transitivity** — via b:        P(a,c) ← max(P(a,c), P(a,b) · P(b,c) · β)

A carrier forwards a bundle to a peer whose predictability toward the
destination is strictly higher.  Unlike the stateless routers in this
package, PRoPHET owns per-node state and must be fed encounters via
:meth:`on_encounter` — the simulator does so through the scheme layer if
configured; tests drive it directly.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.routing.base import ForwardAction, ForwardDecision

__all__ = ["ProphetRouter"]


class ProphetRouter:
    """PRoPHET delivery-predictability routing with canonical defaults."""

    name = "prophet"

    def __init__(
        self,
        num_nodes: int,
        p_init: float = 0.75,
        beta: float = 0.25,
        gamma: float = 0.98,
        aging_unit: float = 3600.0,
        replicate: bool = True,
    ):
        if num_nodes < 2:
            raise ConfigurationError("PRoPHET needs at least two nodes")
        if not 0.0 < p_init <= 1.0:
            raise ConfigurationError("p_init must be in (0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError("beta must be in [0, 1]")
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError("gamma must be in (0, 1]")
        if aging_unit <= 0:
            raise ConfigurationError("aging_unit must be positive")
        self.num_nodes = int(num_nodes)
        self.p_init = float(p_init)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.aging_unit = float(aging_unit)
        self._replicate = replicate
        self._p = np.zeros((num_nodes, num_nodes))
        self._last_aged = np.zeros(num_nodes)

    # --- state maintenance -------------------------------------------------

    def predictability(self, a: int, b: int) -> float:
        return float(self._p[a, b])

    def _age(self, node: int, now: float) -> None:
        elapsed = now - self._last_aged[node]
        if elapsed <= 0:
            return
        self._p[node] *= self.gamma ** (elapsed / self.aging_unit)
        self._last_aged[node] = now

    def on_encounter(self, a: int, b: int, now: float) -> None:
        """Apply the encounter + transitivity updates for a meeting."""
        if not (0 <= a < self.num_nodes and 0 <= b < self.num_nodes) or a == b:
            raise ConfigurationError(f"bad encounter pair ({a}, {b})")
        self._age(a, now)
        self._age(b, now)
        for x, y in ((a, b), (b, a)):
            self._p[x, y] += (1.0 - self._p[x, y]) * self.p_init
        # transitivity: each partner learns the other's table
        for x, y in ((a, b), (b, a)):
            via = self._p[x, y] * self.beta
            candidate = via * self._p[y]
            improved = candidate > self._p[x]
            self._p[x, improved] = candidate[improved]
            self._p[x, x] = 0.0
            self._p[x, y] = max(self._p[x, y], 0.0)

    # --- Router protocol ---------------------------------------------------

    def decide(
        self,
        carrier: int,
        peer: int,
        destination: int,
        graph: ContactGraph,
        time_budget: float,
    ) -> ForwardDecision:
        if peer == destination:
            return ForwardDecision(
                action=ForwardAction.HANDOVER, carrier_score=0.0, peer_score=1.0
            )
        carrier_score = self.predictability(carrier, destination)
        peer_score = self.predictability(peer, destination)
        if peer_score > carrier_score:
            action = (
                ForwardAction.REPLICATE if self._replicate else ForwardAction.HANDOVER
            )
        else:
            action = ForwardAction.KEEP
        return ForwardDecision(
            action=action, carrier_score=carrier_score, peer_score=peer_score
        )
