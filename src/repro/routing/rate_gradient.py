"""Contact-rate / social-ranking forwarding (local knowledge only).

The paper's scheme owes its maintained opportunistic-path tables to the
network administrator's NCL infrastructure (Sec. IV-A); generic DTN
traffic — the baselines' source-addressed queries, and every scheme's
response return path ("any existing data forwarding protocol") — has no
such luxury.  This router models the standard social-forwarding recipe
(PRoPHET/SimBet/BubbleRap family) that needs only locally observable
state:

* a node that has *direct* contact history with the destination scores
  by that contact rate λ(n, dest);
* a node with no direct history scores by its aggregate contact rate
  (its social hubness), scaled to stay strictly below every direct
  score.

A carrier hands the bundle to a strictly higher-scoring peer — climb the
social hierarchy until someone who actually meets the destination takes
over, then climb the direct-rate gradient.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.contact_graph import ContactGraph
from repro.routing.base import ForwardAction, ForwardDecision, ObservableRouter

__all__ = ["RateGradientRouter"]


class RateGradientRouter(ObservableRouter):
    """Single-copy forwarding on (direct rate, social hubness) scores."""

    name = "rate_gradient"

    def __init__(self, replicate: bool = False):
        self._replicate = replicate
        self._graph: Optional[ContactGraph] = None
        self._aggregate: Optional[np.ndarray] = None
        self._hub_scale: float = 1.0

    def update_graph(self, graph: ContactGraph) -> None:
        if graph is self._graph:
            return
        self._graph = graph
        # CSR-based: identical in both storage modes, never N×N.
        self._aggregate = graph.aggregate_rates()
        max_aggregate = float(self._aggregate.max()) if self._aggregate.size else 0.0
        # Scale hubness scores into (0, smallest positive direct rate):
        # any node with direct history always outranks any node without.
        _indptr, _indices, data = graph.csr_rates()
        positive = data[data > 0]
        floor = float(positive.min()) if positive.size else 1.0
        self._hub_scale = (floor / (max_aggregate + 1.0)) * 0.5 if max_aggregate > 0 else 0.0

    def score(self, node: int, destination: int, graph: ContactGraph) -> float:
        """The forwarding score of *node* for *destination*."""
        self.update_graph(graph)
        direct = graph.rate(node, destination)
        if direct > 0:
            return direct
        assert self._aggregate is not None
        return float(self._aggregate[node]) * self._hub_scale

    def decide(
        self,
        carrier: int,
        peer: int,
        destination: int,
        graph: ContactGraph,
        time_budget: float,
    ) -> ForwardDecision:
        if peer == destination:
            return self._observe(
                carrier,
                peer,
                destination,
                ForwardDecision(
                    action=ForwardAction.HANDOVER, carrier_score=0.0, peer_score=1.0
                ),
            )
        carrier_score = self.score(carrier, destination, graph)
        peer_score = self.score(peer, destination, graph)
        if peer_score > carrier_score:
            action = (
                ForwardAction.REPLICATE if self._replicate else ForwardAction.HANDOVER
            )
        else:
            action = ForwardAction.KEEP
        return self._observe(
            carrier,
            peer,
            destination,
            ForwardDecision(
                action=action, carrier_score=carrier_score, peer_score=peer_score
            ),
        )
