"""Event model for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``: priority breaks
same-instant ties deterministically (e.g. data generation is applied
before the queries of the same instant can reference it), and the
monotone sequence number makes the order total and stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

__all__ = ["Event", "EventKind"]


class EventKind(IntEnum):
    """Built-in event kinds, in same-instant execution order."""

    NETWORK_DYNAMICS = -1  # churn/failure (applies before same-instant events)
    GRAPH_REFRESH = 0      # publish a fresh contact-graph snapshot
    DATA_GENERATION = 1    # periodic data-generation decision round
    QUERY_GENERATION = 2   # periodic query-generation round
    CONTACT = 3            # pairwise contact from the trace
    SAMPLE_METRICS = 4     # periodic caching-overhead sampling
    CUSTOM = 9             # extension hook for user events


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled event.

    ``payload`` is compared never (sequence numbers already make ordering
    total), so it can hold arbitrary data.
    """

    time: float
    priority: int
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)
