"""In-transit message types ("bundles", DTN terminology).

Three bundle classes move through the network:

* :class:`PushBundle` — a copy of newly generated data travelling toward
  one central node (Sec. V-A).  The data itself resides in the current
  relay's cache buffer ("the relays carrying the data are considered as
  the temporal caching locations"); the bundle records the onward target.
* :class:`QueryBundle` — one multicast copy of a query travelling toward
  a central node, or broadcasting within an NCL after reaching it
  (Sec. V-B), or flooding epidemically for the incidental baselines.
* :class:`ResponseBundle` — a cached/origin copy of the data returning to
  the requester (Sec. V-C).

Each bundle has a dedup key so a node never stores two copies of the
same logical bundle, and a transfer cost in bits for the per-contact
budget (queries are small control messages; pushes and responses cost the
data size).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from repro.core.data import DataItem, Query

__all__ = [
    "QUERY_BUNDLE_SIZE_BITS",
    "Bundle",
    "PushBundle",
    "QueryBundle",
    "ResponseBundle",
]

#: Control-message size for a query bundle: a query carries an id, a data
#: id, a requester id and a deadline — negligible next to 20–200 Mb data,
#: but charged against the contact budget for fidelity.
QUERY_BUNDLE_SIZE_BITS: int = 1_000

_response_sequence = itertools.count()


@dataclass
class Bundle:
    """Base bundle: creation time plus the expiry after which relays drop it."""

    created_at: float
    expires_at: float

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    @property
    def key(self) -> Hashable:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def size_bits(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass
class PushBundle(Bundle):
    """A data copy being pushed toward ``target_central`` (Sec. V-A).

    ``owns_copy`` records whether the current carrier cached the data *on
    behalf of this push* (a temporal caching location) — only then does a
    handover remove the carrier's copy.  A carrier that held the data
    already (the source's origin copy, a completed push from another NCL,
    or a replacement-placed copy) keeps it when the bundle moves on.
    """

    data: DataItem = None  # type: ignore[assignment]
    target_central: int = -1
    owns_copy: bool = False
    #: set once the central node itself was reached but could not cache
    #: (full buffer): the copy now spills to "another node near the
    #: central node" (Sec. V, Fig. 2) — any member of the target NCL with
    #: room.
    spilling: bool = False

    @property
    def key(self) -> Tuple[str, int, int]:
        return ("push", self.data.data_id, self.target_central)

    @property
    def size_bits(self) -> int:
        return self.data.size


@dataclass
class QueryBundle(Bundle):
    """A query copy.

    ``target_central`` is the NCL this multicast copy aims for (``None``
    for epidemic flooding in the baselines).  ``broadcasting`` flips to
    True once the copy has reached its central node and starts the
    within-NCL broadcast of Sec. V-B.
    """

    query: Query = None  # type: ignore[assignment]
    target_central: Optional[int] = None
    broadcasting: bool = False

    @property
    def key(self) -> Tuple[str, int, object]:
        return ("query", self.query.query_id, self.target_central)

    @property
    def size_bits(self) -> int:
        return QUERY_BUNDLE_SIZE_BITS


@dataclass
class ResponseBundle(Bundle):
    """A data copy returning to ``query.requester`` (Sec. V-C).

    Each emitted response is a distinct physical copy, so the key carries
    a process-unique sequence number (two NCLs answering the same query
    are different bundles, per the paper's overhead discussion).
    """

    data: DataItem = None  # type: ignore[assignment]
    query: Query = None  # type: ignore[assignment]
    responder: int = -1
    sequence: int = field(default_factory=lambda: next(_response_sequence))

    @property
    def key(self) -> Tuple[str, int, int]:
        return ("response", self.query.query_id, self.sequence)

    @property
    def size_bits(self) -> int:
        return self.data.size
