"""Network dynamics: node churn and central-node failure events.

The paper's evaluation keeps the node population fixed and elects NCLs
once at warm-up (Sec. IV-A), but its rate estimator is explicitly online
(Sec. III-B) — the machinery to *react* to a changing network is all
there.  This module supplies the missing stimulus: a declarative list of
:class:`DynamicsEvent`s (join / leave / fail / fail_central) scheduled
through the simulator's :class:`~repro.sim.engine.EventEngine` as
``NETWORK_DYNAMICS`` events.

Semantics (implemented by the simulator's handler):

* ``leave`` — graceful departure: the node goes inactive and its volatile
  state (cached copies, bundles, queries) leaves with it.
* ``fail`` — crash: same state loss, but traced as ``node.failed`` so
  reports can distinguish churn from faults.
* ``join`` — a previously departed/failed node comes back, empty.
* ``fail_central`` — crash whichever node currently holds the given rank
  in the scheme's central-node list (resolved at event time, so it keeps
  meaning "kill an NCL" even after re-elections).

Event times are expressed as *fractions of the evaluation window*, so
one scenario file works across trace scales.  All records are frozen,
JSON-round-trippable and picklable — they ride inside
:class:`~repro.sim.simulator.SimulatorConfig` and the scenario layer's
:class:`~repro.scenario.spec.ScenarioSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import EventEngine
from repro.sim.events import EventKind

__all__ = ["DYNAMICS_ACTIONS", "DynamicsEvent", "DynamicsConfig", "NetworkDynamics"]

#: actions a dynamics event may request
DYNAMICS_ACTIONS = ("join", "leave", "fail", "fail_central")


@dataclass(frozen=True)
class DynamicsEvent:
    """One scheduled network-dynamics event.

    Attributes
    ----------
    action:
        One of :data:`DYNAMICS_ACTIONS`.
    at_fraction:
        When the event fires, as a fraction of the evaluation window
        (0.0 = warm-up end, 1.0 = trace end).
    node:
        Target node id; required for ``join``/``leave``/``fail``.
    central_rank:
        For ``fail_central``: 0-based rank into the scheme's current
        central-node list (0 = highest-metric NCL).
    """

    action: str
    at_fraction: float
    node: Optional[int] = None
    central_rank: int = 0

    def __post_init__(self) -> None:
        if self.action not in DYNAMICS_ACTIONS:
            raise ConfigurationError(
                f"unknown dynamics action {self.action!r}; "
                f"choose from {DYNAMICS_ACTIONS}"
            )
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ConfigurationError("at_fraction must be in [0, 1]")
        if self.action == "fail_central":
            if self.central_rank < 0:
                raise ConfigurationError("central_rank must be >= 0")
        elif self.node is None:
            raise ConfigurationError(f"{self.action!r} event needs a node id")

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "action": self.action,
            "at_fraction": self.at_fraction,
        }
        if self.node is not None:
            record["node"] = self.node
        if self.action == "fail_central":
            record["central_rank"] = self.central_rank
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "DynamicsEvent":
        return cls(
            action=str(record["action"]),
            at_fraction=float(record["at_fraction"]),
            node=record.get("node"),
            central_rank=int(record.get("central_rank", 0)),
        )


@dataclass(frozen=True)
class DynamicsConfig:
    """The full dynamics schedule of one run (empty = static network)."""

    events: Tuple[DynamicsEvent, ...] = ()

    def __post_init__(self) -> None:
        # Accept any iterable of events but store a hashable tuple.
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, DynamicsEvent):
                raise ConfigurationError(
                    f"events must be DynamicsEvent instances, got {event!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.events)

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "DynamicsConfig":
        events: Iterable[Any] = record.get("events", ())
        return cls(events=tuple(DynamicsEvent.from_dict(e) for e in events))


class NetworkDynamics:
    """Schedules a :class:`DynamicsConfig` into an event engine.

    The simulator owns the event *handler* (state changes touch nodes,
    the estimator and the scheme); this class owns only the translation
    from window fractions to absolute event times, validated against the
    network size.
    """

    def __init__(self, config: DynamicsConfig, num_nodes: int):
        self.config = config
        for event in config.events:
            if event.node is not None and not 0 <= event.node < num_nodes:
                raise ConfigurationError(
                    f"dynamics event targets node {event.node}, but the "
                    f"network has {num_nodes} nodes"
                )

    def schedule(self, engine: EventEngine, start: float, end: float) -> int:
        """Queue every event into *engine*; returns the number scheduled.

        Events map onto ``[start, end)``; an ``at_fraction`` of exactly
        1.0 lands just inside the window so it still executes.
        """
        if end <= start:
            raise ConfigurationError("evaluation window must have positive length")
        scheduled = 0
        for event in self.config.events:
            time = start + event.at_fraction * (end - start)
            if time >= end:
                time = end - (end - start) * 1e-9
            engine.schedule(time, EventKind.NETWORK_DYNAMICS, event)
            scheduled += 1
        return scheduled
