"""Runtime invariant checking for the simulator (opt-in sanitizer).

With ``SimulatorConfig(validate_invariants=True)`` the simulator audits
node state after every contact it processes.  The checks are the
structural truths every caching scheme must preserve; a violation
raises :class:`SimulationError` at the event that introduced it, rather
than surfacing later as a silently wrong metric.

The checks cost a few microseconds per node per contact — off by
default, on in the test suite's integration runs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.errors import SimulationError
from repro.sim.bundles import PushBundle, QueryBundle, ResponseBundle
from repro.sim.node import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.results import SimulationResult
    from repro.obs.derive import DerivedMetrics

__all__ = [
    "check_node",
    "check_nodes",
    "check_buffer_occupancy",
    "check_trace_consistency",
]


def check_node(node: Node, now: float) -> None:
    """Audit one node's state; raises :class:`SimulationError` on breach."""
    buffer = node.buffer
    items = buffer.items()

    # --- buffer accounting ----------------------------------------------
    used = sum(d.size for d in items)
    if used != buffer.used:
        raise SimulationError(
            f"node {node.node_id}: buffer accounting drift "
            f"(sum of sizes {used} != used {buffer.used})"
        )
    if buffer.used > buffer.capacity:
        raise SimulationError(
            f"node {node.node_id}: buffer over capacity "
            f"({buffer.used} > {buffer.capacity})"
        )
    ids = [d.data_id for d in items]
    if len(set(ids)) != len(ids):
        raise SimulationError(f"node {node.node_id}: duplicate cached data ids {ids}")

    # --- bundle sanity ---------------------------------------------------
    seen_keys = set()
    for bundle in node.bundles:
        if bundle.key in seen_keys:
            raise SimulationError(
                f"node {node.node_id}: duplicate bundle key {bundle.key!r}"
            )
        seen_keys.add(bundle.key)
        if isinstance(bundle, PushBundle):
            if bundle.data.is_expired(now):
                raise SimulationError(
                    f"node {node.node_id}: carries push for expired data "
                    f"{bundle.data.data_id}"
                )
        elif isinstance(bundle, QueryBundle):
            if bundle.query.is_expired(now) and not bundle.is_expired(now):
                raise SimulationError(
                    f"node {node.node_id}: query bundle outlives its query "
                    f"{bundle.query.query_id}"
                )
        elif isinstance(bundle, ResponseBundle):
            if bundle.expires_at > bundle.query.expires_at:
                raise SimulationError(
                    f"node {node.node_id}: response outlives query "
                    f"{bundle.query.query_id}"
                )

    # --- query-history sanity ------------------------------------------
    for query_id, query in node.active_queries.items():
        if query.query_id != query_id:
            raise SimulationError(
                f"node {node.node_id}: query table key mismatch "
                f"({query_id} != {query.query_id})"
            )


def check_nodes(nodes: Iterable[Node], now: float) -> None:
    """Audit several nodes (the two parties of a contact, typically)."""
    for node in nodes:
        check_node(node, now)


def check_buffer_occupancy(nodes: Iterable[Node]) -> None:
    """Assert per-node buffer occupancy never exceeds capacity.

    The Sec. V-D exchange withdraws items from two buffers and refills
    them; a refill bug (double-placement, exempt-item miscount) shows up
    as ``used > capacity``.  This is the O(1)-per-node fast check run
    after **every** pairwise exchange — unlike :func:`check_node`'s full
    audit, it is cheap enough to stay on unconditionally.
    """
    for node in nodes:
        buffer = node.buffer
        if buffer.used > buffer.capacity:
            raise SimulationError(
                f"node {node.node_id}: buffer over capacity after replacement "
                f"({buffer.used} > {buffer.capacity})"
            )
        if buffer.used < 0:
            raise SimulationError(
                f"node {node.node_id}: negative buffer occupancy {buffer.used}"
            )


def _floats_equal(a: float, b: float) -> bool:
    """Exact equality with NaN == NaN (both paths had nothing to average)."""
    if math.isnan(a) and math.isnan(b):
        return True
    return a == b


def check_trace_consistency(
    result: "SimulationResult", derived: "DerivedMetrics"
) -> None:
    """Cross-check counter-based metrics against the trace-derived ones.

    The trace hooks replay the collector's arithmetic in emission order,
    so a consistent run agrees **exactly** (floats included); any
    mismatch means an event was double-counted, dropped, or emitted from
    the wrong hook.  Raises :class:`SimulationError` naming the first
    divergent metric.
    """
    checks = (
        ("queries_issued", result.queries_issued, derived.queries_issued),
        ("queries_satisfied", result.queries_satisfied, derived.queries_satisfied),
        ("successful_ratio", result.successful_ratio, derived.successful_ratio),
        ("mean_access_delay", result.mean_access_delay, derived.mean_access_delay),
        ("caching_overhead", result.caching_overhead, derived.caching_overhead),
        ("data_generated", result.data_generated, derived.data_generated),
        ("responses_delivered", result.responses_delivered, derived.delivery_events),
        (
            "duplicate_deliveries",
            result.duplicate_deliveries,
            derived.duplicate_deliveries,
        ),
        ("late_deliveries", result.late_deliveries, derived.late_deliveries),
    )
    for name, counted, traced in checks:
        if isinstance(counted, float) or isinstance(traced, float):
            equal = _floats_equal(float(counted), float(traced))
        else:
            equal = counted == traced
        if not equal:
            raise SimulationError(
                f"trace/counter divergence on {name}: "
                f"counters say {counted!r}, trace derives {traced!r}"
            )
