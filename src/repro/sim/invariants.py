"""Runtime invariant checking for the simulator (opt-in sanitizer).

With ``SimulatorConfig(validate_invariants=True)`` the simulator audits
node state after every contact it processes.  The checks are the
structural truths every caching scheme must preserve; a violation
raises :class:`SimulationError` at the event that introduced it, rather
than surfacing later as a silently wrong metric.

The checks cost a few microseconds per node per contact — off by
default, on in the test suite's integration runs.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SimulationError
from repro.sim.bundles import PushBundle, QueryBundle, ResponseBundle
from repro.sim.node import Node

__all__ = ["check_node", "check_nodes"]


def check_node(node: Node, now: float) -> None:
    """Audit one node's state; raises :class:`SimulationError` on breach."""
    buffer = node.buffer
    items = buffer.items()

    # --- buffer accounting ----------------------------------------------
    used = sum(d.size for d in items)
    if used != buffer.used:
        raise SimulationError(
            f"node {node.node_id}: buffer accounting drift "
            f"(sum of sizes {used} != used {buffer.used})"
        )
    if buffer.used > buffer.capacity:
        raise SimulationError(
            f"node {node.node_id}: buffer over capacity "
            f"({buffer.used} > {buffer.capacity})"
        )
    ids = [d.data_id for d in items]
    if len(set(ids)) != len(ids):
        raise SimulationError(f"node {node.node_id}: duplicate cached data ids {ids}")

    # --- bundle sanity ---------------------------------------------------
    seen_keys = set()
    for bundle in node.bundles:
        if bundle.key in seen_keys:
            raise SimulationError(
                f"node {node.node_id}: duplicate bundle key {bundle.key!r}"
            )
        seen_keys.add(bundle.key)
        if isinstance(bundle, PushBundle):
            if bundle.data.is_expired(now):
                raise SimulationError(
                    f"node {node.node_id}: carries push for expired data "
                    f"{bundle.data.data_id}"
                )
        elif isinstance(bundle, QueryBundle):
            if bundle.query.is_expired(now) and not bundle.is_expired(now):
                raise SimulationError(
                    f"node {node.node_id}: query bundle outlives its query "
                    f"{bundle.query.query_id}"
                )
        elif isinstance(bundle, ResponseBundle):
            if bundle.expires_at > bundle.query.expires_at:
                raise SimulationError(
                    f"node {node.node_id}: response outlives query "
                    f"{bundle.query.query_id}"
                )

    # --- query-history sanity ------------------------------------------
    for query_id, query in node.active_queries.items():
        if query.query_id != query_id:
            raise SimulationError(
                f"node {node.node_id}: query table key mismatch "
                f"({query_id} != {query.query_id})"
            )


def check_nodes(nodes: Iterable[Node], now: float) -> None:
    """Audit several nodes (the two parties of a contact, typically)."""
    for node in nodes:
        check_node(node, now)
