"""Per-node simulation state.

A node owns:

* a bounded **cache buffer** (the paper's limited caching buffer);
* an **origin store** of the data it generated itself — a source always
  holds its own live data (it is the fallback responder in the NoCache
  baseline) without competing against cached copies for buffer space;
* carried **bundles** (in-transit pushes/queries/responses);
* a **query history** (popularity table) fed by every query the node
  observes, which drives utility-based cache replacement (Sec. V-D);
* the set of **active queries** it has seen and may still respond to —
  "each caching node at the NCLs is able to maintain the up-to-date
  information about the query history" (Sec. V-B).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.buffer import CacheBuffer
from repro.core.data import DataItem, Query
from repro.core.popularity import PopularityTable
from repro.obs.events import TraceEvent, TraceEventKind
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.sim.bundles import Bundle

__all__ = ["Node"]


class Node:
    """State container for one mobile node."""

    def __init__(self, node_id: int, buffer_capacity: int):
        self.node_id = node_id
        self.buffer = CacheBuffer(buffer_capacity)
        self.origin: Dict[int, DataItem] = {}
        self.popularity = PopularityTable()
        self.active_queries: Dict[int, Query] = {}
        self.responded_queries: Set[int] = set()
        self._bundles: Dict[Hashable, Bundle] = {}
        self._seen_bundles: Set[Hashable] = set()
        #: whether the node currently participates in the network; churn
        #: and failure events (repro.sim.dynamics) toggle this, and the
        #: simulator skips contacts and workload rounds of inactive nodes
        self.active: bool = True
        #: lifecycle trace sink (the simulator installs the run's recorder
        #: when tracing is on; the null default costs one attribute read)
        self.trace: TraceRecorder = NULL_RECORDER
        self._origin_version = 0
        self._holdings_cache: Optional[Tuple[Tuple[int, int], FrozenSet[int]]] = None

    # --- data availability ----------------------------------------------

    def generate_data(self, item: DataItem) -> None:
        """Register data this node generated (kept in the origin store)."""
        self.origin[item.data_id] = item
        self._origin_version += 1

    def holdings(self) -> FrozenSet[int]:
        """Ids of all data this node holds (origin plus cache).

        The frozenset is cached against the origin and buffer version
        counters, so the per-tick query round rebuilds it only for nodes
        whose contents actually changed since the last round.
        """
        key = (self._origin_version, self.buffer.version)
        cache = self._holdings_cache
        if cache is None or cache[0] != key:
            cache = (key, frozenset(self.origin) | frozenset(self.buffer.data_ids()))
            self._holdings_cache = cache
        return cache[1]

    def live_own_data(self, now: float) -> List[DataItem]:
        """This node's own unexpired data items."""
        return [d for d in self.origin.values() if not d.is_expired(now)]

    def has_live_own_data(self, now: float) -> bool:
        return any(not d.is_expired(now) for d in self.origin.values())

    def find_data(self, data_id: int, now: float) -> Optional[DataItem]:
        """Return the item if this node can serve it (origin or cache)."""
        item = self.origin.get(data_id)
        if item is not None and not item.is_expired(now):
            return item
        item = self.buffer.peek(data_id)
        if item is not None and not item.is_expired(now):
            return item
        return None

    def expire_data(self, now: float) -> List[DataItem]:
        """Drop expired origin data and cached items."""
        dropped = [d for d in self.origin.values() if d.is_expired(now)]
        for item in dropped:
            del self.origin[item.data_id]
            self.popularity.forget(item.data_id)
        if dropped:
            self._origin_version += 1
        dropped.extend(self.buffer.evict_expired(now))
        if dropped and self.trace.enabled:
            for item in dropped:
                self.trace.emit(
                    TraceEvent(
                        time=now,
                        kind=TraceEventKind.DATA_EXPIRED,
                        node=self.node_id,
                        data_id=item.data_id,
                    )
                )
        return dropped

    # --- query history -----------------------------------------------------

    def observe_query(self, query: Query, now: float) -> None:
        """Record a query sighting: popularity history + active set."""
        if query.query_id not in self.active_queries and not query.is_expired(now):
            self.active_queries[query.query_id] = query
            self.popularity.record_request(query.data_id, now)
            if self.trace.enabled:
                self.trace.emit(
                    TraceEvent(
                        time=now,
                        kind=TraceEventKind.QUERY_OBSERVED,
                        node=self.node_id,
                        data_id=query.data_id,
                        query_id=query.query_id,
                    )
                )

    def expire_queries(self, now: float) -> None:
        expired = [
            qid for qid, q in self.active_queries.items() if q.is_expired(now)
        ]
        for qid in expired:
            del self.active_queries[qid]
            self.responded_queries.discard(qid)

    def pending_queries_for(self, data_id: int, now: float) -> List[Query]:
        """Active observed queries for *data_id* this node has not yet
        answered — the push/pull conjunction point of Sec. V."""
        return [
            q
            for q in self.active_queries.values()
            if q.data_id == data_id
            and not q.is_expired(now)
            and q.query_id not in self.responded_queries
        ]

    # --- churn / failure ---------------------------------------------------

    def purge(self) -> Dict[str, int]:
        """Drop all volatile state (crash/departure); returns drop counts.

        A failed or departed node loses its cached copies, origin data,
        carried bundles and query bookkeeping.  The dedup memory of seen
        bundles survives — a rejoining node is the same device, and the
        epidemic dedup contract ("ever carried") must not reset.
        """
        counts = {
            "cached": len(self.buffer),
            "origin": len(self.origin),
            "bundles": len(self._bundles),
            "queries": len(self.active_queries),
        }
        self.buffer.clear()
        self.origin.clear()
        self._origin_version += 1
        self._bundles.clear()
        self.active_queries.clear()
        self.responded_queries.clear()
        return counts

    # --- bundle carriage ---------------------------------------------------

    @property
    def bundles(self) -> List[Bundle]:
        return list(self._bundles.values())

    def carries(self, key: Hashable) -> bool:
        return key in self._bundles

    def has_seen(self, key: Hashable) -> bool:
        """Whether this node ever carried the bundle (epidemic dedup)."""
        return key in self._seen_bundles

    def store_bundle(self, bundle: Bundle) -> bool:
        """Start carrying *bundle*; returns False if already carried."""
        if bundle.key in self._bundles:
            return False
        self._bundles[bundle.key] = bundle
        self._seen_bundles.add(bundle.key)
        return True

    def drop_bundle(self, key: Hashable) -> Optional[Bundle]:
        return self._bundles.pop(key, None)

    def drop_expired_bundles(self, now: float) -> List[Bundle]:
        expired = [b for b in self._bundles.values() if b.is_expired(now)]
        for bundle in expired:
            del self._bundles[bundle.key]
        return expired

    # --- memory accounting -------------------------------------------------

    def nbytes(self) -> int:
        """Deep heap footprint of this node's state in bytes: cache
        buffer, origin store, popularity table, active-query set and
        bundle carriage/dedup bookkeeping.

        The trace recorder is excluded — it is shared run state owned by
        the observability subsystem, not by any one node.
        """
        from repro.obs.memory import deep_sizeof

        return deep_sizeof(self, seen={id(self.trace)})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Node(id={self.node_id}, cached={len(self.buffer)}, "
            f"own={len(self.origin)}, bundles={len(self._bundles)})"
        )
