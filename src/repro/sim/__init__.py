"""Trace-driven discrete-event DTN simulator.

* :mod:`repro.sim.events` / :mod:`repro.sim.engine` — generic DES core.
* :mod:`repro.sim.bundles` — in-transit message types (pushes, queries,
  responses).
* :mod:`repro.sim.node` — per-node state: cache buffer, own data, carried
  bundles, query history.
* :mod:`repro.sim.network` — per-contact transfer budgets (2.1 Mb/s
  Bluetooth EDR links, Sec. VI-A).
* :mod:`repro.sim.simulator` — the orchestrator: warm-up on the first
  half of the trace, workload + caching scheme on the second half,
  metrics collection throughout.
"""

from repro.sim.bundles import Bundle, PushBundle, QueryBundle, ResponseBundle
from repro.sim.engine import EventEngine
from repro.sim.events import Event, EventKind
from repro.sim.network import TransferBudget
from repro.sim.invariants import check_node, check_nodes
from repro.sim.node import Node


def __getattr__(name):
    # Simulator imports the caching-scheme interface, whose package in
    # turn imports bundle/node types from here; loading it lazily keeps
    # `from repro.sim.bundles import ...` free of that cycle.
    if name in ("Simulator", "SimulatorConfig"):
        from repro.sim import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Event",
    "EventKind",
    "EventEngine",
    "Bundle",
    "PushBundle",
    "QueryBundle",
    "ResponseBundle",
    "TransferBudget",
    "Node",
    "Simulator",
    "SimulatorConfig",
]
