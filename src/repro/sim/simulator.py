"""Simulation orchestrator (paper Sec. VI-A experiment setup).

One :class:`Simulator` run executes the paper's protocol:

1. **Warm-up** — the first half of the trace only feeds the online
   contact-rate estimator ("the first half of the trace is used as the
   warm-up period for the accumulation of network information and
   subsequent NCL selection").
2. **Setup** — at the midpoint the scheme receives the graph snapshot and
   its :meth:`on_warmup_complete` hook runs (NCL selection for the
   intentional scheme).  Node buffers are drawn uniform in
   [buffer_min, buffer_max].
3. **Evaluation** — the second half replays contacts as discrete events
   interleaved with periodic data rounds (every T_L), query rounds
   (every T_L/2), caching-overhead samples, and contact-graph refreshes.

The run is a pure function of (trace, scheme, workload config, seed):
every random decision draws from a named child stream of the root seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Set, Union

from repro.caching.base import CachingScheme, SchemeServices
from repro.core.data import DataItem, Query
from repro.errors import ConfigurationError
from repro.graph.estimator import OnlineContactGraphEstimator
from repro.metrics.collector import MetricsCollector
from repro.metrics.results import SimulationResult
from repro.metrics.timeline import TimelineRecorder
from repro.obs.derive import derive_metrics
from repro.obs.events import TraceEvent, TraceEventKind
from repro.obs.memory import NULL_MEMORY_MONITOR, MemoryMonitor, MemorySample, deep_sizeof
from repro.obs.primitives import MetricsRegistry
from repro.obs.profile import NULL_PROFILER, Profiler, maybe_span, set_active_profiler
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    MemoryRecorder,
    TraceRecorder,
)
from repro.obs.timeseries import NULL_SAMPLER, TimeSeriesSample, TimeSeriesSampler
from repro.rng import SeedSequenceFactory
from repro.sim.dynamics import DynamicsConfig, DynamicsEvent, NetworkDynamics
from repro.sim.engine import EventEngine
from repro.sim.events import Event, EventKind
from repro.sim.invariants import check_nodes, check_trace_consistency
from repro.sim.network import TransferBudget
from repro.sim.node import Node
from repro.traces.contact import Contact, ContactTrace
from repro.traces.stream import ContactStream
from repro.units import BLUETOOTH_EDR_BITS_PER_SECOND
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadProcess

__all__ = ["SimulatorConfig", "Simulator"]


@dataclass(frozen=True)
class SimulatorConfig:
    """Run-level knobs independent of workload and scheme.

    Attributes
    ----------
    seed:
        Root seed; derives independent streams for buffers, workload, and
        scheme decisions.
    link_capacity:
        Contact link capacity in bits/second (2.1 Mb/s Bluetooth EDR).
    graph_refresh_period:
        Spacing of fresh contact-graph snapshots pushed to the scheme
        during evaluation; ``None`` picks 1/20 of the evaluation window.
    snapshot_period:
        The estimator's snapshot cache window (simulated seconds): a
        graph refresh landing inside the window reuses the previous
        snapshot instead of rebuilding rates.  ``0`` (default) rebuilds
        on every refresh — the pre-caching behaviour.  Topology changes
        (churn/failure) always invalidate the cache immediately.
    sample_period:
        Spacing of caching-overhead samples; ``None`` picks the workload's
        query period.
    dynamics:
        Optional :class:`repro.sim.dynamics.DynamicsConfig` schedule of
        churn and failure events applied during evaluation.  ``None``
        (default) keeps the network static — the paper's setup.
    min_contacts_for_rate:
        Pairs observed fewer times get rate 0 in snapshots.
    validate_invariants:
        Audit node state after every contact (sanitizer mode; see
        :mod:`repro.sim.invariants`).  Off by default.
    trace_path:
        When set, the run writes its full lifecycle trace as JSONL to
        this path (consumed by ``python -m repro trace``).  A plain
        string, so configs stay picklable for the parallel runner.
    profile:
        Collect nestable wall-clock spans (:class:`repro.obs.profile.
        Profiler`) across the simulator, the scheme and the path-weight
        kernels.  Off by default; every span site guards on
        ``profiler.enabled``, so disabled runs pay one attribute read.
    timeseries:
        Record the extended per-sample telemetry
        (:class:`repro.obs.timeseries.TimeSeriesSampler`: per-node
        occupancy, per-NCL load, cache-hit ratio, pending queries) at
        every ``SAMPLE_METRICS`` event.  Off by default.
    streaming_metrics:
        Run the collector in bounded-memory streaming mode
        (:class:`repro.metrics.collector.MetricsCollector` with running
        sums, a delay reservoir and pruned per-query state) — the
        heavy-traffic path.  Off by default: the exact mode retains the
        full query record.
    reservoir_size:
        Capacity of the streaming mode's uniform delay sample.
    mem_profile:
        Sample memory telemetry (peak RSS, tracemalloc heap when
        tracing, per-subsystem accountant breakdown) at every
        ``SAMPLE_METRICS`` event via :class:`repro.obs.memory.
        MemoryMonitor`.  Off by default; the hook guards on
        ``memory.enabled`` and the samples travel outside the frozen
        result, so enabling it cannot change any simulation outcome.
    sparse_graph:
        Storage mode of the estimator's contact-graph snapshots:
        ``True``/``False`` force adjacency-list/dense storage, ``None``
        (default) auto-selects by node count.  Sparse snapshots route
        NCL selection through the k-NN truncated metric and keep memory
        O(edges) — the 10⁵-node path.
    """

    seed: int = 0
    link_capacity: float = BLUETOOTH_EDR_BITS_PER_SECOND
    graph_refresh_period: Optional[float] = None
    snapshot_period: float = 0.0
    sample_period: Optional[float] = None
    min_contacts_for_rate: int = 1
    validate_invariants: bool = False
    trace_path: Optional[str] = None
    profile: bool = False
    timeseries: bool = False
    dynamics: Optional[DynamicsConfig] = None
    streaming_metrics: bool = False
    reservoir_size: int = 256
    mem_profile: bool = False
    sparse_graph: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.link_capacity <= 0:
            raise ConfigurationError("link capacity must be positive")
        if self.graph_refresh_period is not None and self.graph_refresh_period <= 0:
            raise ConfigurationError("graph_refresh_period must be positive")
        if self.snapshot_period < 0:
            raise ConfigurationError("snapshot_period must be non-negative")
        if self.sample_period is not None and self.sample_period <= 0:
            raise ConfigurationError("sample_period must be positive")
        if self.reservoir_size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")


class Simulator:
    """One trace-driven run of a caching scheme under a workload."""

    def __init__(
        self,
        trace: Union[ContactTrace, ContactStream],
        scheme: CachingScheme,
        workload: WorkloadConfig,
        config: Optional[SimulatorConfig] = None,
        recorder: Optional[TraceRecorder] = None,
    ):
        # A materialised trace knows it is empty up front; a lazy stream
        # (repro.traces.stream) is only discovered empty during warm-up.
        if isinstance(trace, ContactTrace) and trace.num_contacts == 0:
            raise ConfigurationError("cannot simulate an empty trace")
        self.trace = trace
        self.scheme = scheme
        self.workload = workload
        self.config = config or SimulatorConfig()

        # An explicit recorder wins; otherwise config.trace_path opens a
        # JSONL sink owned (and closed) by this run; otherwise tracing is
        # off and every hook reduces to one ``enabled`` check.
        self._owns_recorder = recorder is None and self.config.trace_path is not None
        if recorder is not None:
            self.recorder = recorder
        elif self.config.trace_path is not None:
            self.recorder = JsonlRecorder(self.config.trace_path)
        else:
            self.recorder = NULL_RECORDER

        self._factory = SeedSequenceFactory(self.config.seed)
        # The streaming collector's reservoir draws from its own named
        # stream; the exact collector draws nothing (and gets no stream,
        # keeping its construction byte-identical to the legacy path).
        self.metrics = (
            MetricsCollector(
                streaming=True,
                reservoir_size=self.config.reservoir_size,
                rng=self._factory.generator("metrics"),
            )
            if self.config.streaming_metrics
            else MetricsCollector()
        )
        self.timeline = TimelineRecorder()
        # Aggregate instruments are always on (an inc is one integer add);
        # spans and extended sampling are opt-in behind enabled guards.
        self.registry = MetricsRegistry()
        self.profiler: Profiler = Profiler() if self.config.profile else NULL_PROFILER
        self.timeseries: TimeSeriesSampler = (
            TimeSeriesSampler() if self.config.timeseries else NULL_SAMPLER
        )
        self.engine = EventEngine()
        self.estimator = OnlineContactGraphEstimator(
            num_nodes=trace.num_nodes,
            origin=trace.start_time,
            min_contacts=self.config.min_contacts_for_rate,
            snapshot_period=self.config.snapshot_period,
            sparse=self.config.sparse_graph,
        )
        # Validates event node ids against the network size up front.
        self._dynamics: Optional[NetworkDynamics] = (
            NetworkDynamics(self.config.dynamics, trace.num_nodes)
            if self.config.dynamics
            else None
        )

        buffer_rng = self._factory.generator("buffers")
        self.nodes: List[Node] = [
            Node(
                node_id=i,
                buffer_capacity=int(
                    buffer_rng.uniform(workload.buffer_min, workload.buffer_max)
                ),
            )
            for i in range(trace.num_nodes)
        ]
        if self.recorder.enabled:
            for node in self.nodes:
                node.trace = self.recorder
        # The arrival process gets its own named stream: the default
        # periodic process never touches it, and stochastic processes
        # draw from it without perturbing the workload stream — same
        # seed, different arrival process, identical data catalogue.
        self.workload_process = WorkloadProcess(
            workload,
            trace.num_nodes,
            self._factory.generator("workload"),
            arrival_rng=self._factory.generator("workload.arrivals"),
        )
        # Accountants are always built (cheap closures over existing
        # attributes) so memory_breakdown() answers at any time; the
        # *sampling* monitor is opt-in behind the .enabled guard, same
        # zero-overhead convention as the profiler and sampler above.
        self._memory_accountants = self._build_memory_accountants()
        self.memory: MemoryMonitor = (
            MemoryMonitor(self._memory_accountants)
            if self.config.mem_profile
            else NULL_MEMORY_MONITOR
        )
        self._ran = False
        # Serve-mode (long-lived session) state; see start_session().
        self._session_active = False
        self._eval_contacts: List[Contact] = []
        self._serve_cycle = 0
        self._serve_index = 0
        self._round_cursor: Dict[EventKind, int] = {}
        # One-ahead stream feed (bounded-memory trace path): the live
        # evaluation-contact iterator and the next contact to schedule.
        self._contact_feed: Optional[Iterator[Contact]] = None
        self._next_contact: Optional[Contact] = None

    # --- derived times ---------------------------------------------------

    @property
    def warmup_end(self) -> float:
        return self.trace.start_time + self.trace.duration / 2.0

    @property
    def eval_duration(self) -> float:
        return self.trace.end_time - self.warmup_end

    # --- event handlers ----------------------------------------------------

    def _handle_contact(self, event: Event) -> None:
        contact: Contact = event.payload
        if self._contact_feed is not None:
            # One-ahead feed: pull the stream's next contact while this
            # one is handled.  Contacts enter the queue in stream (time)
            # order, so their relative sequence numbers — and hence the
            # full event order — match up-front scheduling exactly.
            upcoming = next(self._contact_feed, None)
            if upcoming is None:
                self._contact_feed = None
            else:
                self.engine.schedule(upcoming.start, EventKind.CONTACT, upcoming)
        node_a = self.nodes[contact.node_a]
        node_b = self.nodes[contact.node_b]
        if not (node_a.active and node_b.active):
            # A departed/failed party: the contact never happens — it is
            # neither counted nor fed to the rate estimator.
            self.registry.counter("sim.contacts_skipped").inc()
            return
        self.registry.counter("sim.contacts").inc()
        self.estimator.record_contact(contact.node_a, contact.node_b, contact.start)
        budget = TransferBudget.for_contact(contact.duration, self.config.link_capacity)
        with maybe_span(self.profiler, "sim.contact"):
            self.scheme.on_contact(node_a, node_b, contact.start, budget)
        if self.config.validate_invariants:
            check_nodes((node_a, node_b), contact.start)

    def _handle_data_round(self, event: Event) -> None:
        with maybe_span(self.profiler, "sim.data_round"):
            self._data_round(event)

    def _data_round(self, event: Event) -> None:
        now = event.time
        has_live = [node.has_live_own_data(now) for node in self.nodes]
        for item in self.workload_process.data_round(now, has_live):
            node = self.nodes[item.source]
            if not node.active:
                # The workload's random draws are consumed either way (so
                # churn never perturbs other nodes' streams), but an
                # absent node generates nothing.
                continue
            node.generate_data(item)
            self.metrics.on_data_generated(item)
            self.registry.counter("sim.data_generated").inc()
            if self.recorder.enabled:
                self.recorder.emit(
                    TraceEvent(
                        time=now,
                        kind=TraceEventKind.DATA_GENERATED,
                        node=item.source,
                        data_id=item.data_id,
                        attrs={"size": item.size, "expires_at": item.expires_at},
                    )
                )
            self.scheme.on_data_generated(node, item, now)

    def _handle_query_round(self, event: Event) -> None:
        with maybe_span(self.profiler, "sim.query_round"):
            self._query_round(event)

    def _query_round(self, event: Event) -> None:
        now = event.time
        # Node.holdings() is version-cached: only nodes whose origin or
        # buffer changed since the last round rebuild their id set.
        holdings: Dict[int, Set[int]] = {
            node.node_id: node.holdings() for node in self.nodes
        }
        for query in self.workload_process.query_round(now, holdings):
            if not self.nodes[query.requester].active:
                continue
            self.metrics.on_query_created(query)
            self.registry.counter("sim.queries_issued").inc()
            if self.recorder.enabled:
                self.recorder.emit(
                    TraceEvent(
                        time=now,
                        kind=TraceEventKind.QUERY_CREATED,
                        node=query.requester,
                        data_id=query.data_id,
                        query_id=query.query_id,
                        attrs={"time_constraint": query.time_constraint},
                    )
                )
            self.scheme.on_query_generated(self.nodes[query.requester], query, now)

    def _handle_graph_refresh(self, event: Event) -> None:
        self.registry.counter("sim.graph_refreshes").inc()
        with maybe_span(self.profiler, "sim.graph_refresh"):
            # No force: the estimator's snapshot_period caching decides
            # whether a rebuild is due (period 0 rebuilds every time).
            graph = self.estimator.snapshot(event.time)
            self.scheme.on_graph_updated(graph, event.time)

    # --- network dynamics (churn / failure) -------------------------------

    def _handle_dynamics(self, event: Event) -> None:
        spec: DynamicsEvent = event.payload
        with maybe_span(self.profiler, "sim.dynamics"):
            self._apply_dynamics(spec, event.time)

    def _apply_dynamics(self, spec: DynamicsEvent, now: float) -> None:
        if spec.action == "join":
            assert spec.node is not None
            self._activate_node(spec.node, now)
        elif spec.action == "fail_central":
            node_id = self._resolve_central(spec.central_rank)
            if node_id is None:
                self.registry.counter("sim.dynamics_unresolved").inc()
                return
            self._deactivate_node(
                node_id, now, failed=True, central_rank=spec.central_rank
            )
        else:  # "leave" / "fail"
            assert spec.node is not None
            self._deactivate_node(spec.node, now, failed=spec.action == "fail")

    def _resolve_central(self, rank: int) -> Optional[int]:
        """The node currently holding central rank *rank*, if any.

        Resolved at event time against the scheme's live selection, so
        ``fail_central`` stays meaningful across re-elections; schemes
        without NCLs (the baselines) simply absorb the event.
        """
        selection = getattr(self.scheme, "selection", None)
        if selection is None:
            return None
        centrals = selection.central_nodes
        if rank >= len(centrals):
            return None
        return int(centrals[rank])

    def _deactivate_node(
        self,
        node_id: int,
        now: float,
        failed: bool,
        central_rank: Optional[int] = None,
    ) -> None:
        node = self.nodes[node_id]
        if not node.active:
            return
        node.active = False
        dropped = node.purge()
        self.estimator.set_node_active(node_id, False)
        self.registry.counter(
            "sim.node_failures" if failed else "sim.node_departures"
        ).inc()
        if self.recorder.enabled:
            attrs: Dict[str, object] = dict(dropped)
            if central_rank is not None:
                attrs["central_rank"] = central_rank
            self.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=(
                        TraceEventKind.NODE_FAILED
                        if failed
                        else TraceEventKind.NODE_LEFT
                    ),
                    node=node_id,
                    attrs=attrs,
                )
            )
        # Publish the changed topology in the same instant (GRAPH_REFRESH
        # has a later same-time priority), so e.g. a central-node failure
        # triggers re-election now rather than a refresh period later.
        self.scheme.on_topology_changed(now)
        self.engine.schedule(now, EventKind.GRAPH_REFRESH)

    def _activate_node(self, node_id: int, now: float) -> None:
        node = self.nodes[node_id]
        if node.active:
            return
        node.active = True
        self.estimator.set_node_active(node_id, True)
        self.registry.counter("sim.node_joins").inc()
        if self.recorder.enabled:
            self.recorder.emit(
                TraceEvent(time=now, kind=TraceEventKind.NODE_JOINED, node=node_id)
            )
        self.scheme.on_topology_changed(now)
        self.engine.schedule(now, EventKind.GRAPH_REFRESH)

    def _handle_sample(self, event: Event) -> None:
        now = event.time
        live = self.workload_process.live_items(now)
        cached = 0
        occupancy = 0.0
        for node in self.nodes:
            cached += node.buffer.live_count(now)
            occupancy += node.buffer.used / node.buffer.capacity
        self.metrics.sample_copies_per_item(cached, len(live))
        if self.recorder.enabled:
            self.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.SAMPLE,
                    attrs={
                        "cached_copies": cached,
                        "live_items": len(live),
                        "mean_occupancy": occupancy / len(self.nodes),
                    },
                )
            )
        self.timeline.record(
            time=now,
            live_items=len(live),
            cached_copies=cached,
            queries_issued=self.metrics.queries_issued,
            queries_satisfied=self.metrics.queries_satisfied,
            mean_buffer_occupancy=occupancy / len(self.nodes),
        )
        mem_sample: Optional[MemorySample] = None
        if self.memory.enabled:
            mem_sample = self.memory.sample(now)
            if self.recorder.enabled:
                self.recorder.emit(
                    TraceEvent(
                        time=now,
                        kind=TraceEventKind.MEMORY_SAMPLED,
                        attrs={
                            "rss_mb": mem_sample.rss_mb,
                            "accounted_mb": mem_sample.accounted_mb,
                            "top_subsystem": mem_sample.top_subsystem,
                        },
                    )
                )
        if self.timeseries.enabled:
            self.timeseries.record(
                self._build_sample(now, len(live), cached, mem_sample)
            )

    # --- memory attribution ------------------------------------------------

    def _build_memory_accountants(self) -> Dict[str, Callable[[], int]]:
        """Zero-argument byte accountants, one per memory subsystem.

        The literal keys below are the contract that
        ``scripts/check_memory_accountants.py`` cross-checks against
        :data:`repro.obs.memory.SUBSYSTEMS`: a new state holder must be
        added in both places (plus an oracle test) or the lint fails.
        """
        from repro.graph.weight_cache import shared_weight_cache

        return {
            "contact_graph": self.estimator.nbytes,
            "nodes": lambda: sum(node.nbytes() for node in self.nodes),
            "scheme": self._scheme_nbytes,
            "weight_cache": lambda: int(shared_weight_cache().nbytes),
            "metrics": self.metrics.nbytes,
            "workload": self.workload_process.nbytes,
            "events": self.engine.nbytes,
            "observability": self._obs_nbytes,
        }

    def _scheme_nbytes(self) -> int:
        """Bytes of scheme-owned state (NCL selection, routers, response
        strategy, replacement pools).

        The scheme's attached services reference simulator-owned state
        (node list, metrics, estimator, …); pre-seeding the deep walk
        with their ids leaves exactly the containers the scheme itself
        allocated — no double attribution against the other accountants.
        """
        seen = {
            id(self),
            id(self.nodes),
            id(self.metrics),
            id(self.estimator),
            id(self.workload_process),
            id(self.engine),
            id(self.recorder),
            id(self.timeline),
            id(self.registry),
            id(self.timeseries),
            id(self.profiler),
            id(self.workload),
            id(self.trace),
        }
        seen.update(id(node) for node in self.nodes)
        return deep_sizeof(self.scheme, seen)

    def _obs_nbytes(self) -> int:
        """Bytes of observability state: recorder buffers, the timeline,
        registry instruments, extended time-series rows, and the memory
        samples themselves."""
        seen: Set[int] = set()
        total = deep_sizeof(self.recorder, seen)
        total += deep_sizeof(self.timeline, seen)
        total += deep_sizeof(self.registry, seen)
        total += deep_sizeof(self.timeseries, seen)
        total += deep_sizeof(self.memory.samples, seen)
        return total

    def memory_breakdown(self) -> Dict[str, int]:
        """Current per-subsystem byte attribution (accountants only).

        Available whether or not ``mem_profile`` is on — the accountants
        are plain closures — so tests and ad-hoc debugging can ask
        "where are the bytes?" without rerunning with sampling enabled.
        """
        return {
            name: int(fn()) for name, fn in sorted(self._memory_accountants.items())
        }

    def ncl_load(self, now: float) -> Dict[int, int]:
        """Live cached copies per NCL basin: central node id → copies
        held by the nodes whose nearest central node it is.

        Empty for schemes without NCL selection — consumers (telemetry
        sampler, health monitor) treat that as "no skew signal".
        """
        ncl_load: Dict[int, int] = {}
        selection = getattr(self.scheme, "selection", None)
        if selection is not None:
            nearest = selection.nearest_central
            for node in self.nodes:
                central = int(nearest[node.node_id])
                held = node.buffer.live_count(now)
                ncl_load[central] = ncl_load.get(central, 0) + held
        return ncl_load

    def _build_sample(
        self,
        now: float,
        live_items: int,
        cached_copies: int,
        mem_sample: Optional[MemorySample] = None,
    ) -> TimeSeriesSample:
        """Assemble one extended telemetry sample (sampler enabled only).

        Memory fields stay at their NaN/empty defaults unless this
        sample coincided with an enabled memory monitor — the sampler's
        schema is identical either way, only the values fill in.
        """
        node_occupancy = tuple(
            node.buffer.used / node.buffer.capacity for node in self.nodes
        )
        ncl_load = self.ncl_load(now)
        memory_fields: Dict[str, object] = {}
        if mem_sample is not None:
            memory_fields = {
                "rss_mb": mem_sample.rss_mb,
                "py_heap_mb": mem_sample.py_heap_mb,
                "mem_top": mem_sample.top_subsystem,
            }
        return TimeSeriesSample(
            time=now,
            live_items=live_items,
            cached_copies=cached_copies,
            queries_issued=self.metrics.queries_issued,
            queries_satisfied=self.metrics.queries_satisfied,
            pending_queries=self.metrics.pending_queries(now),
            cache_lookups=self.metrics.cache_lookups,
            cache_hits=self.metrics.cache_hits,
            node_occupancy=node_occupancy,
            ncl_load=ncl_load,
            delay_p50=self.metrics.delay_p50,
            delay_p95=self.metrics.delay_p95,
            **memory_fields,
        )

    # --- run ------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full protocol and return the run's metrics."""
        if self._ran:
            raise ConfigurationError("a Simulator instance runs exactly once")
        self._ran = True
        # Module-level kernels (graph.paths, graph.weight_cache) report to
        # the process's active profiler; install this run's for the
        # duration and restore the previous one afterwards so nothing
        # leaks across runs.
        previous = set_active_profiler(self.profiler)
        try:
            return self._run()
        finally:
            set_active_profiler(previous)

    def _run(self) -> SimulationResult:
        warmup_end = self.warmup_end
        eval_contacts = self._warmup()
        self._announce_flash_window(warmup_end)
        self._prepare(warmup_end)
        for contact in eval_contacts:
            self.engine.schedule(contact.start, EventKind.CONTACT, contact)
        if self._next_contact is not None:
            # Streaming path: seed the one-ahead feed with the first
            # evaluation contact; _handle_contact pulls the rest.
            self.engine.schedule(
                self._next_contact.start, EventKind.CONTACT, self._next_contact
            )
            self._next_contact = None
        end = self.trace.end_time
        self._schedule_rounds(end)
        if self._dynamics is not None:
            # Dynamics land inside the evaluation window; same-instant
            # ordering (NETWORK_DYNAMICS < GRAPH_REFRESH) applies churn
            # before any coinciding refresh reads the topology.
            self._dynamics.schedule(self.engine, warmup_end, end)

        self.engine.run()
        return self._finalize()

    # --- run phases (shared with serve mode) ------------------------------

    def _warmup(self) -> List[Contact]:
        """Phase 1: feed the estimator; return the evaluation contacts.

        On a lazy :class:`~repro.traces.stream.ContactStream` the
        evaluation half is *not* collected: warm-up consumes the stream
        up to the midpoint, then parks the live iterator and its first
        evaluation contact for the one-ahead feed — peak memory is one
        contact, not half the trace.
        """
        warmup_end = self.warmup_end
        eval_contacts: List[Contact] = []
        if isinstance(self.trace, ContactTrace):
            for contact in self.trace:
                if contact.start < warmup_end:
                    self.estimator.record_contact(
                        contact.node_a, contact.node_b, contact.start
                    )
                else:
                    eval_contacts.append(contact)
        else:
            feed = iter(self.trace)
            for contact in feed:
                if contact.start < warmup_end:
                    self.estimator.record_contact(
                        contact.node_a, contact.node_b, contact.start
                    )
                else:
                    self._contact_feed = feed
                    self._next_contact = contact
                    break
        self.workload_process.set_window(warmup_end, self.trace.end_time)
        return eval_contacts

    def _announce_flash_window(self, warmup_end: float) -> None:
        """One-time trace announcement of the workload's surge window.

        Emitted at the evaluation-window start so live consumers
        (``repro watch``) can annotate upcoming flash-crowd windows; in
        serve mode the surge only exists in the first replay cycle
        (later cycles keep the baseline rounds), which the event states
        explicitly.
        """
        if not self.recorder.enabled:
            return
        window = self.workload_process.arrivals.flash_window()
        if window is None:
            return
        self.recorder.emit(
            TraceEvent(
                time=warmup_end,
                kind=TraceEventKind.WORKLOAD_FLASH_CROWD_WINDOW,
                attrs={
                    "start": window[0],
                    "end": window[1],
                    "first_cycle_only": True,
                },
            )
        )

    def _prepare(self, warmup_end: float) -> None:
        """Phase 2 + handler registration: scheme setup at the midpoint."""
        services = SchemeServices(
            nodes=self.nodes,
            rng=self._factory.generator("scheme"),
            metrics=self.metrics,
            deliver=self._deliver,
            lookup_data=self._lookup_data,
            response_horizon=self.workload.query_time_constraint,
            recorder=self.recorder,
            clock=lambda: self.engine.now,
            profiler=self.profiler,
            registry=self.registry,
        )
        with maybe_span(self.profiler, "sim.setup"):
            self._setup(services, warmup_end)

        engine = self.engine
        engine.register(EventKind.CONTACT, self._handle_contact)
        engine.register(EventKind.DATA_GENERATION, self._handle_data_round)
        engine.register(EventKind.QUERY_GENERATION, self._handle_query_round)
        engine.register(EventKind.GRAPH_REFRESH, self._handle_graph_refresh)
        engine.register(EventKind.SAMPLE_METRICS, self._handle_sample)
        if self._dynamics is not None:
            engine.register(EventKind.NETWORK_DYNAMICS, self._handle_dynamics)

    def _round_specs(self) -> "List[tuple]":
        """(kind, period, first-index) of every periodic round family.

        Queries start one period after the first data round so the first
        pushes have had a chance to leave the sources (Sec. VI-A issues
        data and queries throughout the second half; the offset choice
        is documented in DESIGN.md).
        """
        query_period = self.workload.query_generation_period
        refresh_period = self.config.graph_refresh_period or max(
            self.eval_duration / 20.0, 1.0
        )
        return [
            (EventKind.DATA_GENERATION, self.workload.data_generation_period, 0),
            (EventKind.QUERY_GENERATION, query_period, 1),
            (EventKind.GRAPH_REFRESH, refresh_period, 1),
            (EventKind.SAMPLE_METRICS, self.config.sample_period or query_period, 1),
        ]

    def _schedule_rounds(self, until: float) -> None:
        """Schedule every periodic round with time < *until*.

        Round k fires at warmup_end + k·period by index multiplication
        (not t += period accumulation), so long horizons cannot drift
        the round times through float rounding.  Per-kind cursors let
        serve mode extend the schedule window-by-window without ever
        re-issuing or skipping a round.
        """
        warmup_end = self.warmup_end
        for kind, period, first in self._round_specs():
            k = self._round_cursor.get(kind, first)
            while True:
                t = warmup_end + k * period
                if t >= until:
                    break
                self.engine.schedule(t, kind)
                k += 1
            self._round_cursor[kind] = k

    def _finalize(self) -> SimulationResult:
        result = self.metrics.finalize(name=self.scheme.name, seed=self.config.seed)
        if isinstance(self.recorder, MemoryRecorder):
            # In-memory traces are cheap to re-derive, so every traced
            # run cross-audits its own accounting (tentpole invariant).
            check_trace_consistency(result, derive_metrics(self.recorder.events))
        if self._owns_recorder:
            self.recorder.close()
        return result

    # --- serve mode (long-lived session) ----------------------------------

    def start_session(self) -> None:
        """Fit the network once for batch replay (``repro serve``).

        Runs the warm-up and scheme setup exactly as :meth:`run` would,
        but schedules nothing: :meth:`advance_session` then replays the
        evaluation contacts cycle after cycle, window by window, and
        :meth:`finalize_session` freezes the metrics.  A session and a
        plain run are mutually exclusive on one instance.
        """
        if self._ran:
            raise ConfigurationError("a Simulator instance runs exactly once")
        if not isinstance(self.trace, ContactTrace):
            raise ConfigurationError(
                "serve sessions replay the evaluation window repeatedly and "
                "need a materialised ContactTrace; call stream.materialize()"
            )
        if self._dynamics is not None:
            raise ConfigurationError(
                "serve sessions keep the network static (no dynamics schedule)"
            )
        self._ran = True
        self._session_active = True
        self._eval_contacts = self._warmup()
        self._announce_flash_window(self.warmup_end)
        self._prepare(self.warmup_end)

    def advance_session(self, until: float) -> None:
        """Replay contacts and rounds with time < *until*, then drain.

        Contacts cycle: evaluation-window contact *i* of cycle *c*
        replays at its original time shifted by ``c · eval_duration``,
        so every window sees the trace's own contact structure while the
        periodic rounds keep their drift-free ``warmup_end + k·period``
        grid across windows.
        """
        if not self._session_active:
            raise ConfigurationError("start_session() must run first")
        duration = self.eval_duration
        contacts = self._eval_contacts
        while contacts:
            if self._serve_index >= len(contacts):
                self._serve_index = 0
                self._serve_cycle += 1
            base = contacts[self._serve_index]
            shift = self._serve_cycle * duration
            start = base.start + shift
            if start >= until:
                break
            self.engine.schedule(
                start,
                EventKind.CONTACT,
                replace(base, start=start, end=base.end + shift),
            )
            self._serve_index += 1
        self._schedule_rounds(until)
        self.engine.run()

    def finalize_session(self) -> SimulationResult:
        """Close a serve session and freeze its metrics."""
        if not self._session_active:
            raise ConfigurationError("start_session() must run first")
        self._session_active = False
        return self._finalize()

    def _setup(self, services: SchemeServices, warmup_end: float) -> None:
        """Midpoint setup: attach the scheme and run NCL selection."""
        self.scheme.attach(services)
        snapshot = self.estimator.snapshot(warmup_end, force=True)
        self.scheme.on_graph_updated(snapshot, warmup_end)
        self.scheme.on_warmup_complete(warmup_end)

    # --- scheme callbacks -------------------------------------------------

    def _lookup_data(self, data_id: int) -> Optional[DataItem]:
        """Global data catalogue (source addressing for the baselines)."""
        return self.workload_process.item_by_id(data_id)

    def _deliver(self, query: Query, data: DataItem, now: float) -> None:
        outcome = self.metrics.record_delivery(query, now)
        if outcome == "first":
            self.registry.counter("sim.queries_satisfied").inc()
            self.registry.histogram("sim.delivery_delay").observe(
                now - query.created_at
            )
            if self.recorder.enabled:
                self.recorder.emit(
                    TraceEvent(
                        time=now,
                        kind=TraceEventKind.QUERY_SATISFIED,
                        node=query.requester,
                        data_id=data.data_id,
                        query_id=query.query_id,
                        attrs={"created_at": query.created_at},
                    )
                )
            requester = self.nodes[query.requester]
            self.scheme.on_data_delivered(requester, data, query, now)
        elif self.recorder.enabled and outcome == "duplicate":
            self.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.DELIVERY_DUPLICATE,
                    node=query.requester,
                    data_id=data.data_id,
                    query_id=query.query_id,
                )
            )
        elif self.recorder.enabled and outcome == "late":
            self.recorder.emit(
                TraceEvent(
                    time=now,
                    kind=TraceEventKind.DELIVERY_LATE,
                    node=query.requester,
                    data_id=data.data_id,
                    query_id=query.query_id,
                    attrs={"expires_at": query.expires_at},
                )
            )
