"""Minimal deterministic discrete-event engine.

A binary heap of :class:`Event`s plus a handler table keyed by
:class:`EventKind`.  The engine is intentionally tiny — the simulator
(one level up) owns all domain logic — but enforces the invariants a DES
core must guarantee: monotone simulated time, total event order, and
safe scheduling of new events from inside handlers (only at or after the
current time).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventKind

__all__ = ["EventEngine"]

Handler = Callable[[Event], None]


class EventEngine:
    """Priority-queue event loop."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._handlers: Dict[EventKind, Handler] = {}
        self._now = float("-inf")
        self._processed = 0
        self._running = False

    # --- configuration ---------------------------------------------------

    def register(self, kind: EventKind, handler: Handler) -> None:
        """Install *handler* for *kind* (one handler per kind)."""
        if kind in self._handlers:
            raise SimulationError(f"handler already registered for {kind!r}")
        self._handlers[kind] = handler

    # --- scheduling ------------------------------------------------------

    def schedule(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        priority: Optional[int] = None,
    ) -> Event:
        """Queue an event; inside a running loop, *time* must be >= now."""
        if self._running and time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(
            time=float(time),
            priority=int(kind) if priority is None else priority,
            sequence=next(self._sequence),
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    # --- execution ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    def nbytes(self) -> int:
        """Deep heap footprint of the pending-event queue in bytes.

        Handlers are bound methods — code, not state — and the deep walk
        fences callables off, so this measures the heap of
        :class:`Event` records and their payloads only.
        """
        from repro.obs.memory import deep_sizeof

        return deep_sizeof(self)

    def run(self, until: Optional[float] = None) -> int:
        """Process events in order until the queue drains (or *until*).

        Returns the number of events processed by this call.  Events at
        exactly *until* are still processed; later ones stay queued.
        """
        processed_before = self._processed
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0].time > until:
                    break
                event = heapq.heappop(self._heap)
                if event.time < self._now:
                    raise SimulationError(
                        f"time went backwards: {event.time} < {self._now}"
                    )
                self._now = event.time
                handler = self._handlers.get(event.kind)
                if handler is None:
                    raise SimulationError(f"no handler for event kind {event.kind!r}")
                handler(event)
                self._processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._processed - processed_before
