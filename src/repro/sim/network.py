"""Per-contact link model.

Every contact is a bidirectional wireless link of fixed capacity
(2.1 Mb/s Bluetooth EDR in the paper's evaluation, Sec. VI-A); the total
volume transferable during one contact is capacity × contact duration.
:class:`TransferBudget` meters that volume: every bundle transfer and
cache-replacement exchange during the contact draws from the same pot,
and transfers that no longer fit simply wait for a later contact.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import BLUETOOTH_EDR_BITS_PER_SECOND, transfer_budget_bits

__all__ = ["TransferBudget"]


class TransferBudget:
    """Remaining transferable bits within one contact."""

    __slots__ = ("_initial", "_remaining", "_consumed_transfers")

    def __init__(self, bits: int):
        if bits < 0:
            raise ConfigurationError("transfer budget must be non-negative")
        self._initial = int(bits)
        self._remaining = int(bits)
        self._consumed_transfers = 0

    @classmethod
    def for_contact(
        cls,
        duration_seconds: float,
        capacity_bits_per_second: float = BLUETOOTH_EDR_BITS_PER_SECOND,
    ) -> "TransferBudget":
        return cls(transfer_budget_bits(capacity_bits_per_second, duration_seconds))

    @property
    def initial(self) -> int:
        return self._initial

    @property
    def remaining(self) -> int:
        return self._remaining

    @property
    def consumed(self) -> int:
        return self._initial - self._remaining

    @property
    def transfer_count(self) -> int:
        return self._consumed_transfers

    def can_afford(self, bits: int) -> bool:
        return bits <= self._remaining

    def try_consume(self, bits: int) -> bool:
        """Atomically consume *bits* if affordable; returns success."""
        if bits < 0:
            raise ConfigurationError("cannot consume a negative volume")
        if bits > self._remaining:
            return False
        self._remaining -= bits
        if bits > 0:
            self._consumed_transfers += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TransferBudget(remaining={self._remaining}/{self._initial})"
