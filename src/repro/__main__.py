"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``traces``
    Print the Table I summary of the four synthetic preset traces.
``ncl``
    Select NCLs on a preset trace and print the metric ranking.
``simulate``
    Run one scheme on a preset trace and print the headline metrics.
``compare``
    Run all five schemes head-to-head on a preset trace.
``fit``
    Check the exponential inter-contact assumption on a preset trace.
``figure``
    Regenerate one of the paper's tables/figures at a chosen scale.
``serve``
    Fit the network once, then replay query batches against the fitted
    state (heavy-traffic mode: streaming metrics, per-batch throughput).
    ``--slo``/``--out``/``--prom-out`` add live health telemetry: SLO
    rules, anomaly detection, a JSONL health log, Prometheus text.
``watch``
    Render the health log of a serve run directory (or a bare
    ``health.jsonl``); ``--follow`` re-renders as the log grows.
``bench``
    Run the kernel microbenchmarks and fail on regression vs baseline.
``trace``
    Replay a JSONL trace file into a per-query audit report, or drill
    into one query/data item's causal chain (``--query-id``/``--data-id``).
``report``
    Render a run directory (``simulate --out DIR``) as Markdown.
``diagnose``
    Causal-chain and model-fidelity diagnosis of a run directory or a
    bare ``trace.jsonl`` (``--strict`` exits non-zero on warnings).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional, Sequence

from repro.experiments.report import render_table
from repro.experiments.figures import TableResult
from repro.graph.contact_graph import ContactGraph
from repro.core.ncl import select_ncls
from repro.metrics.results import SimulationResult
from repro.scenario import (
    RESPONSE_STRATEGIES,
    ROUTERS,
    SCHEMES as SCHEME_REGISTRY,
    TRACE_SOURCES,
    RunSpec,
    ScenarioSpec,
    SchemeSpec,
    TraceSpec,
    build_trace,
    scheme_factory,
    simulator_config,
)
from repro.sim.simulator import Simulator
from repro.traces.analysis import exponential_fit_report
from repro.traces.catalog import STREAM_PRESETS, TRACE_PRESETS, load_preset_trace
from repro.traces.contact import ContactTrace
from repro.traces.stats import summarize_trace
from repro.units import HOUR, MEGABIT
from repro.workload import ARRIVALS
from repro.workload.config import WorkloadConfig

SCHEMES = SCHEME_REGISTRY.names()


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        choices=sorted(TRACE_SOURCES.names()),
        default="mit_reality",
        help="Table I preset, or a streaming large-scale source "
        f"({', '.join(sorted(STREAM_PRESETS))})",
    )
    parser.add_argument("--node-factor", type=float, default=0.6)
    parser.add_argument("--time-factor", type=float, default=0.15)
    parser.add_argument("--trace-seed", type=int, default=1)


def _load_trace(args: argparse.Namespace):
    return build_trace(
        TraceSpec(
            name=args.trace,
            seed=args.trace_seed,
            node_factor=args.node_factor,
            time_factor=args.time_factor,
        )
    )


def _result_line(result: SimulationResult) -> str:
    delay = (
        f"{result.mean_access_delay / HOUR:8.1f}h"
        if result.queries_satisfied
        else "     n/a"
    )
    return (
        f"{result.name:14s} ratio={result.successful_ratio:6.3f} "
        f"delay={delay} copies/item={result.caching_overhead:5.2f} "
        f"queries={result.queries_issued}"
    )


def cmd_traces(args: argparse.Namespace) -> int:
    rows = []
    for key in TRACE_PRESETS:
        trace = load_preset_trace(
            key, seed=args.trace_seed, node_factor=args.node_factor, time_factor=args.time_factor
        )
        rows.append(summarize_trace(trace).as_row())
    print(render_table(TableResult("table1", "Trace summary (Table I)", rows)))
    return 0


def cmd_ncl(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    preset = TRACE_PRESETS.get(args.trace) or STREAM_PRESETS[args.trace]
    # from_trace iterates the trace lazily, so a streaming source builds
    # its (sparse) graph without ever materialising the contacts.
    graph = ContactGraph.from_trace(trace)
    selection = select_ncls(graph, args.k, preset.ncl_time_budget)
    print(f"trace: {trace}")
    print(f"time budget T = {preset.ncl_time_budget / HOUR:.0f}h; top {args.k} NCLs:")
    for rank, node in enumerate(selection.central_nodes):
        print(f"  #{rank + 1}: node {node}  C_i = {selection.metrics[node]:.4f}")
    return 0


def _parse_arrival_param(pair: str):
    key, sep, value = pair.partition("=")
    try:
        if not sep or not key:
            raise ValueError(pair)
        return key, float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected KEY=NUMBER, got {pair!r}"
        ) from None


def _workload_from_args(args: argparse.Namespace) -> WorkloadConfig:
    params = dict(getattr(args, "arrival_param", None) or []) or None
    return WorkloadConfig(
        mean_data_lifetime=args.lifetime_hours * HOUR,
        mean_data_size=int(args.size_mb * MEGABIT),
        arrival_process=getattr(args, "arrival", "periodic"),
        arrival_params=params,
    )


def _scenario_from_args(
    args: argparse.Namespace, scheme_name: Optional[str] = None
) -> ScenarioSpec:
    """The ScenarioSpec the legacy CLI flags describe (thin-shim path)."""
    return ScenarioSpec(
        trace=TraceSpec(
            name=args.trace,
            seed=args.trace_seed,
            node_factor=args.node_factor,
            time_factor=args.time_factor,
        ),
        scheme=SchemeSpec(
            name=scheme_name or args.scheme,
            num_ncls=args.k,
            knn_k=getattr(args, "knn_k", None),
        ),
        workload=_workload_from_args(args),
        run=RunSpec(
            seed=args.seed,
            repeat=getattr(args, "repeat", 1),
            sparse_graph=getattr(args, "sparse", None),
            mem_profile=getattr(args, "mem_profile", False),
        ),
    )


def _run_one(args: argparse.Namespace, scheme_name: str) -> SimulationResult:
    spec = _scenario_from_args(args, scheme_name)
    trace = build_trace(spec.trace)
    config = simulator_config(spec, trace_path=getattr(args, "trace_out", None))
    return Simulator(trace, scheme_factory(spec)(), spec.workload, config).run()


def _print_registries() -> None:
    for title, registry in (
        ("schemes", SCHEME_REGISTRY),
        ("trace sources", TRACE_SOURCES),
        ("response strategies", RESPONSE_STRATEGIES),
        ("routers", ROUTERS),
        ("arrival processes", ARRIVALS),
    ):
        print(f"{title}: {', '.join(registry.names())}")


def cmd_simulate(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.runner import ExperimentResult
    from repro.experiments.runstore import MEMORY_FILE, save_run
    from repro.metrics.results import aggregate_results
    from repro.obs.memory import render_memory_breakdown, write_memory_log
    from repro.obs.profile import render_profile_table
    from repro.obs.provenance import build_manifest
    from repro.obs.timeseries import merge_timeseries
    from repro.scenario import run_scenario

    if args.list_schemes:
        _print_registries()
        return 0
    if args.scenario:
        spec = ScenarioSpec.load(args.scenario)
    else:
        spec = _scenario_from_args(args)
    # --out implies telemetry collection; --profile implies spans.
    collect = bool(args.out or args.profile)
    spec = dataclasses.replace(
        spec,
        run=dataclasses.replace(
            spec.run,
            profile=spec.run.profile or collect,
            timeseries=spec.run.timeseries or bool(args.out),
        ),
    )
    repeat = spec.run.repeat

    memory_samples = ()
    if repeat > 1 or (args.workers and args.workers > 1):
        if args.trace_out or args.timeline_out:
            print(
                "--trace-out/--timeline-out record one run; "
                "use --repeat 1 without --workers",
                file=sys.stderr,
            )
            return 2
        if spec.run.mem_profile:
            print(
                "--mem-profile records one process; use --repeat 1 "
                "without --workers",
                file=sys.stderr,
            )
            return 2
        experiment = run_scenario(spec, workers=args.workers)
        for result in experiment.results:
            print(_result_line(result))
    else:
        trace_out = args.trace_out
        if args.out and not trace_out:
            # Single traced runs into a run directory get their lifecycle
            # trace by default, so `repro report` can show the per-query
            # audit and event counts (churn/failure runs in particular).
            os.makedirs(args.out, exist_ok=True)
            trace_out = os.path.join(args.out, "trace.jsonl")
        trace = build_trace(spec.trace)
        config = simulator_config(spec, trace_path=trace_out)
        simulator = Simulator(trace, scheme_factory(spec)(), spec.workload, config)
        result = simulator.run()
        print(_result_line(result))
        memory_samples = tuple(simulator.memory.samples)
        if spec.run.mem_profile:
            print()
            print(render_memory_breakdown(simulator.memory_breakdown()))
        if args.timeline_out:
            simulator.timeline.to_csv(args.timeline_out)
            print(f"timeline written to {args.timeline_out}")
        experiment = ExperimentResult(
            aggregate=aggregate_results([result]),
            results=[result],
            registry=simulator.registry,
            profile=simulator.profiler.as_dict(),
            timeseries=merge_timeseries([(spec.run.seed, simulator.timeseries.rows())]),
            manifest=build_manifest(spec.provenance_config(), spec.run.seeds),
        )

    if args.out:
        save_run(experiment, args.out)
        if memory_samples:
            write_memory_log(os.path.join(args.out, MEMORY_FILE), memory_samples)
        print(f"run directory written to {args.out} (render with `repro report`)")
    if args.profile:
        print()
        print(render_profile_table(experiment.profile))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    for scheme_name in SCHEMES:
        print(_result_line(_run_one(args, scheme_name)))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.experiments.runstore import HEALTH_FILE, MANIFEST_FILE, MEMORY_FILE
    from repro.experiments.serve import serve_repeated, summarize_throughput
    from repro.obs.health import render_prometheus, write_health_log
    from repro.obs.memory import write_memory_log
    from repro.obs.provenance import build_manifest, write_manifest
    from repro.obs.slo import SLOEngine, parse_slo_rule

    try:
        rules = tuple(parse_slo_rule(spec_text) for spec_text in (args.slo or []))
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    monitor = bool(rules or args.out or args.prom_out)

    spec = _scenario_from_args(args)
    # Serving heavy traffic is the streaming collector's home turf.
    spec = dataclasses.replace(
        spec, run=dataclasses.replace(spec.run, streaming_metrics=True)
    )
    outcomes = serve_repeated(
        build_trace(spec.trace),
        scheme_factory(spec),
        spec.workload,
        seeds=spec.run.seeds,
        batches=args.batches,
        rounds_per_batch=args.rounds,
        config=simulator_config(spec),
        workers=args.workers,
        slo_rules=rules,
        monitor_health=monitor,
    )
    all_batches = []
    for seed, outcome in zip(spec.run.seeds, outcomes):
        for batch in outcome.batches:
            print(
                f"seed {seed} batch {batch.index:3d} "
                f"[{batch.start / HOUR:7.1f}h, {batch.end / HOUR:7.1f}h) "
                f"issued={batch.queries_issued:5d} "
                f"satisfied={batch.queries_satisfied:5d} "
                f"pending={batch.pending_queries:5d} "
                f"{batch.queries_per_second:9.0f} q/s"
            )
        print(_result_line(outcome.result))
        if outcome.health is not None:
            for transition in outcome.health.transitions:
                print(
                    f"seed {seed} {transition.kind} rule={transition.rule} "
                    f"t={transition.time / HOUR:.1f}h "
                    f"{transition.field}={transition.value:.4g} "
                    f"(target {transition.target:.4g})"
                )
            if outcome.health.anomalies:
                print(
                    f"seed {seed} anomalies: "
                    f"{len(outcome.health.anomalies)} detector firing(s)"
                )
        all_batches.extend(outcome.batches)
    summary = summarize_throughput(all_batches)
    print(
        f"throughput: {summary['queries_issued']} queries in "
        f"{summary['wall_seconds']:.2f}s wall = "
        f"{summary['queries_per_second']:.0f} q/s "
        f"over {summary['batches']} batches"
    )

    first_health = outcomes[0].health if outcomes else None
    first_memory = outcomes[0].memory if outcomes else ()
    if args.out and first_health is not None:
        os.makedirs(args.out, exist_ok=True)
        write_health_log(Path(args.out) / HEALTH_FILE, first_health)
        if first_memory:
            write_memory_log(Path(args.out) / MEMORY_FILE, first_memory)
        write_manifest(
            build_manifest(
                spec.provenance_config(), spec.run.seeds, slo_rules=rules
            ),
            os.path.join(args.out, MANIFEST_FILE),
        )
        note = " (first seed)" if len(outcomes) > 1 else ""
        print(f"health log{note} written to {args.out} (render with `repro watch`)")
    if args.prom_out and first_health is not None:
        # Rebuild the final SLO state by replaying the frozen snapshot
        # stream (pure function of the stream, so this is exact).
        engine = SLOEngine(rules)
        for snapshot in first_health.snapshots:
            engine.evaluate(snapshot)
        last_memory = first_memory[-1] if first_memory else None
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(first_health, engine, memory=last_memory))
        print(f"Prometheus exposition written to {args.prom_out}")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    import os
    import time
    from pathlib import Path

    from repro.experiments.runstore import HEALTH_FILE, MEMORY_FILE
    from repro.obs.health import read_health_log, render_health_table
    from repro.obs.memory import read_memory_log, render_memory_table

    path = args.path
    memory_path = None
    if os.path.isdir(path):
        candidate = os.path.join(path, MEMORY_FILE)
        memory_path = candidate if os.path.exists(candidate) else None
        path = os.path.join(path, HEALTH_FILE)
    if not os.path.exists(path):
        if memory_path is None:
            print(
                f"no health log at {path!r} and no memory log either "
                "(serve with --slo/--out, or simulate with --mem-profile)",
                file=sys.stderr,
            )
            return 2
        # A mem-profiled simulate run has no health log; watch the
        # memory samples alone (the growth poll then follows them).
        path = memory_path
        memory_path = None

        def _render() -> str:
            return render_memory_table(read_memory_log(Path(path)), limit=args.limit)

    else:

        def _render() -> str:
            text = render_health_table(
                read_health_log(Path(path)), limit=args.limit
            )
            if memory_path:
                text += "\n\n" + render_memory_table(
                    read_memory_log(Path(memory_path)), limit=args.limit
                )
            return text

    if not args.follow:
        print(_render())
        return 0
    last_size = -1
    try:
        while True:
            size = os.path.getsize(path)
            if size != last_size:
                last_size = size
                print(_render())
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_fit(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    if not isinstance(trace, ContactTrace):
        trace = trace.materialize()  # the fit needs random access
    report = exponential_fit_report(trace)
    print(f"trace: {trace}")
    for key, value in report.as_row().items():
        print(f"  {key}: {value}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.configs import BENCH_SCALE, PAPER_SCALE, SMOKE_SCALE
    from repro.experiments.figures import ALL_EXPERIMENTS, TableResult
    from repro.experiments.report import render_figure

    scales = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}
    runner = ALL_EXPERIMENTS.get(args.name)
    if runner is None:
        print(
            f"unknown experiment {args.name!r}; available: {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    import inspect

    parameters = inspect.signature(runner).parameters
    result = runner(scales[args.scale]) if "scale" in parameters else runner()
    if isinstance(result, TableResult):
        print(render_table(result))
    elif isinstance(result, dict):
        for figure in result.values():
            print(render_figure(figure, chart=args.chart))
    else:
        print(render_figure(result, chart=args.chart))
    return 0


def _render_drilldown(events, query_id: Optional[int], data_id: Optional[int]) -> int:
    """Shared ``--query-id``/``--data-id`` timeline rendering (trace +
    diagnose commands)."""
    from repro.obs import build_causality, render_push_timeline, render_query_timeline

    causality = build_causality(events)
    try:
        if query_id is not None:
            print(render_query_timeline(causality, query_id))
        if data_id is not None:
            print(render_push_timeline(causality, data_id))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_events, render_audit_report

    try:
        events = list(read_events(args.path))
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.path!r}: {exc}", file=sys.stderr)
        return 2
    if args.query_id is not None or args.data_id is not None:
        return _render_drilldown(events, args.query_id, args.data_id)
    print(render_audit_report(events, limit=args.limit, only=args.only))
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.experiments.runstore import contact_trace_from_manifest, load_run
    from repro.obs import (
        diagnosis_to_dict,
        read_events,
        render_diagnosis,
        run_diagnosis,
    )
    from repro.obs.fidelity import FidelityThresholds, override_thresholds

    contact_trace = None
    provenance = None
    if os.path.isdir(args.path):
        from repro.errors import ConfigurationError

        try:
            data = load_run(args.path)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not data["trace_path"]:
            print(
                f"run directory {args.path!r} has no trace.jsonl "
                "(re-run `repro simulate --out` with a single seed)",
                file=sys.stderr,
            )
            return 2
        trace_path = data["trace_path"]
        provenance = data["manifest"]
        contact_trace = contact_trace_from_manifest(provenance)
    else:
        trace_path = args.path
    try:
        events = list(read_events(trace_path))
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {trace_path!r}: {exc}", file=sys.stderr)
        return 2

    if args.query_id is not None or args.data_id is not None:
        return _render_drilldown(events, args.query_id, args.data_id)

    thresholds = override_thresholds(
        FidelityThresholds(),
        max_median_ks=args.max_median_ks,
        max_delivery_brier=args.max_delivery_brier,
        max_calibration_gap=args.max_calibration_gap,
        max_load_cv=args.max_load_cv,
        min_samples=args.min_samples,
    )
    diagnosis = run_diagnosis(
        events,
        contact_trace=contact_trace,
        thresholds=thresholds,
        provenance=provenance,
    )
    print(render_diagnosis(diagnosis), end="")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(diagnosis_to_dict(diagnosis), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nJSON report written to {args.json}")
    if args.strict and diagnosis.warnings:
        print(
            f"\nstrict mode: {len(diagnosis.warnings)} warning(s)", file=sys.stderr
        )
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.experiments.runstore import render_run_report

    try:
        print(render_run_report(args.run_dir, audit_limit=args.limit))
    except (ConfigurationError, OSError, ValueError) as exc:
        print(f"cannot render run {args.run_dir!r}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.benchguard import run_guard

    return run_guard(
        benchmark_file=args.benchmark_file,
        baseline_path=args.baseline,
        result_json=args.json,
        threshold=args.threshold,
        update_baseline=args.update_baseline,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("python", "numba"),
        default=None,
        help=(
            "kernel backend for the hot numeric kernels (default: the "
            "REPRO_KERNEL_BACKEND env var, else python; numba silently "
            "degrades to python when not installed)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_traces = sub.add_parser("traces", help="Table I summary of the preset traces")
    _add_trace_args(p_traces)
    p_traces.set_defaults(func=cmd_traces)

    p_ncl = sub.add_parser("ncl", help="NCL selection on a preset trace")
    _add_trace_args(p_ncl)
    p_ncl.add_argument("-k", type=int, default=5)
    p_ncl.set_defaults(func=cmd_ncl)

    for name, func in (
        ("simulate", cmd_simulate),
        ("compare", cmd_compare),
        ("serve", cmd_serve),
    ):
        p = sub.add_parser(
            name,
            help=(
                "fit once, replay query batches (heavy-traffic mode)"
                if name == "serve"
                else f"{name} scheme(s) on a preset trace"
            ),
        )
        _add_trace_args(p)
        p.add_argument("--scheme", choices=SCHEMES, default="intentional")
        p.add_argument("-k", type=int, default=5)
        p.add_argument(
            "--sparse",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="force adjacency-list (--sparse) or dense (--no-sparse) "
            "contact-graph storage; default auto-selects by node count",
        )
        p.add_argument(
            "--knn-k",
            type=int,
            default=None,
            metavar="K",
            help="truncate the NCL metric to each node's K nearest "
            "contacts (default: exact on dense graphs, K=32 on sparse)",
        )
        p.add_argument("--lifetime-hours", type=float, default=72.0)
        p.add_argument("--size-mb", type=float, default=100.0)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--arrival",
            choices=ARRIVALS.names(),
            default="periodic",
            help="query arrival process (default: the paper's periodic rounds)",
        )
        p.add_argument(
            "--arrival-param",
            action="append",
            type=_parse_arrival_param,
            metavar="KEY=VALUE",
            help="arrival-process knob, repeatable (e.g. --arrival-param burst=4)",
        )
        if name in ("simulate", "serve"):
            p.add_argument(
                "--mem-profile",
                action="store_true",
                help="sample RSS/heap and the per-subsystem byte "
                "attribution at each telemetry boundary (writes "
                "memory.jsonl under --out)",
            )
        if name == "serve":
            p.add_argument(
                "--batches", type=int, default=8, metavar="N",
                help="number of query batches to replay",
            )
            p.add_argument(
                "--rounds", type=int, default=1, metavar="N",
                help="query rounds per batch",
            )
            p.add_argument(
                "--repeat", type=int, default=1, metavar="N",
                help="serve sessions with seeds seed..seed+N-1",
            )
            p.add_argument(
                "--workers", type=int, default=None, metavar="N",
                help="process-pool size for --repeat > 1",
            )
            p.add_argument(
                "--slo", action="append", default=None, metavar="SPEC",
                help="SLO rule: a preset name (availability, latency, "
                "backlog, hit_ratio, memory) or field>=TARGET[:SUSTAIN] "
                "/ field<=TARGET[:SUSTAIN]; repeatable; implies health "
                "monitoring",
            )
            p.add_argument(
                "--out", default=None, metavar="DIR",
                help="write health.jsonl + manifest.json to this run "
                "directory (render with `repro watch DIR`)",
            )
            p.add_argument(
                "--prom-out", default=None, metavar="PATH",
                help="write the final health state in Prometheus text "
                "exposition format",
            )
            p.set_defaults(func=func)
            continue
        p.add_argument(
            "--trace-out",
            default=None,
            metavar="PATH",
            help="record a JSONL lifecycle trace (replay with `repro trace PATH`)",
        )
        if name == "simulate":
            p.add_argument(
                "--scenario",
                default=None,
                metavar="PATH",
                help="run a ScenarioSpec JSON file (trace/scheme/workload/"
                "dynamics come from the file; flags like --out still apply)",
            )
            p.add_argument(
                "--list-schemes",
                action="store_true",
                help="list the registered schemes, trace sources, response "
                "strategies and routers, then exit",
            )
            p.add_argument(
                "--out",
                default=None,
                metavar="DIR",
                help="write a run directory (result, manifest, profile, "
                "time series; render with `repro report DIR`)",
            )
            p.add_argument(
                "--profile",
                action="store_true",
                help="collect wall-clock spans and print the profile table",
            )
            p.add_argument(
                "--timeline-out",
                default=None,
                metavar="PATH",
                help="write the periodic metric timeline as CSV",
            )
            p.add_argument(
                "--repeat",
                type=int,
                default=1,
                metavar="N",
                help="repeat with seeds seed..seed+N-1 and aggregate",
            )
            p.add_argument(
                "--workers",
                type=int,
                default=None,
                metavar="N",
                help="process-pool size for --repeat > 1",
            )
        p.set_defaults(func=func)

    p_fit = sub.add_parser("fit", help="exponential inter-contact fit report")
    _add_trace_args(p_fit)
    p_fit.set_defaults(func=cmd_fit)

    p_fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    p_fig.add_argument("name", help="table1, fig4, fig7, fig9a, fig10, ...")
    p_fig.add_argument("--scale", choices=("smoke", "bench", "paper"), default="smoke")
    p_fig.add_argument("--chart", action="store_true", help="include ASCII charts")
    p_fig.set_defaults(func=cmd_figure)

    from repro.experiments.benchguard import (
        DEFAULT_BASELINE,
        DEFAULT_RESULT_JSON,
        DEFAULT_THRESHOLD,
    )
    from pathlib import Path

    p_bench = sub.add_parser("bench", help="kernel benchmark regression guard")
    from repro.experiments.benchguard import DEFAULT_BENCHMARK_FILE

    p_bench.add_argument(
        "--benchmark-file",
        type=Path,
        default=DEFAULT_BENCHMARK_FILE,
        help="pytest file holding the benchmarks (e.g. the opt-in "
        "benchmarks/test_bench_sim_large.py tier)",
    )
    p_bench.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    p_bench.add_argument("--json", type=Path, default=DEFAULT_RESULT_JSON)
    p_bench.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    p_bench.add_argument("--update-baseline", action="store_true")
    p_bench.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser("trace", help="per-query audit report from a JSONL trace")
    p_trace.add_argument("path", help="trace file written by --trace-out")
    p_trace.add_argument("--limit", type=int, default=None, help="show at most N queries")
    p_trace.add_argument(
        "--only",
        choices=("satisfied", "expired", "pending"),
        default=None,
        help="restrict the report to queries with this outcome",
    )
    p_trace.add_argument(
        "--query-id",
        type=int,
        default=None,
        metavar="N",
        help="render query N's causal response chain as a timeline",
    )
    p_trace.add_argument(
        "--data-id",
        type=int,
        default=None,
        metavar="N",
        help="render data item N's push tree as a timeline",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_diag = sub.add_parser(
        "diagnose",
        help="causal-chain + model-fidelity diagnosis of a run",
    )
    p_diag.add_argument("path", help="run directory (simulate --out) or trace.jsonl")
    p_diag.add_argument(
        "--query-id", type=int, default=None, metavar="N",
        help="render query N's causal response chain instead of the report",
    )
    p_diag.add_argument(
        "--data-id", type=int, default=None, metavar="N",
        help="render data item N's push tree instead of the report",
    )
    p_diag.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the diagnosis as JSON",
    )
    p_diag.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any warning fires (CI gate)",
    )
    p_diag.add_argument("--max-median-ks", type=float, default=None)
    p_diag.add_argument("--max-delivery-brier", type=float, default=None)
    p_diag.add_argument("--max-calibration-gap", type=float, default=None)
    p_diag.add_argument("--max-load-cv", type=float, default=None)
    p_diag.add_argument("--min-samples", type=int, default=None)
    p_diag.set_defaults(func=cmd_diagnose)

    p_report = sub.add_parser(
        "report", help="Markdown report of a run directory (simulate --out)"
    )
    p_report.add_argument("run_dir", help="directory written by simulate --out")
    p_report.add_argument(
        "--limit", type=int, default=10, help="max queries in the trace audit section"
    )
    p_report.set_defaults(func=cmd_report)

    p_watch = sub.add_parser(
        "watch", help="render a serve run's live health log"
    )
    p_watch.add_argument("path", help="run directory (serve --out) or health.jsonl")
    p_watch.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show at most the last N health windows",
    )
    p_watch.add_argument(
        "--follow", action="store_true",
        help="keep watching and re-render whenever the log grows",
    )
    p_watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval for --follow",
    )
    p_watch.set_defaults(func=cmd_watch)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.backend is not None:
        from repro.kernels import set_backend

        set_backend(args.backend)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
