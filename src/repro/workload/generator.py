"""Periodic data- and query-generation rounds (paper Sec. VI-A).

**Data rounds** run every T_L: each node that has no unexpired data of
its own generates a new item with probability p_G, with lifetime uniform
in [0.5·T_L, 1.5·T_L] and size uniform in [0.5·s_avg, 1.5·s_avg].

**Query rounds** run every T_L/2: each node walks the live data
catalogue and requests the item of Zipf rank j with probability P_j
(Eq. 8).  Every item draws a *permanent popularity key* at creation, and
live items are rank-ordered by that key: the catalogue stays Zipf-shaped
as items churn, while a freshly generated item can land anywhere in the
popularity order — which is precisely why the paper pushes new data to
the NCLs before any query arrives.  A node does not request data it
generated or currently caches.  Each query carries the fixed time
constraint T_L/2.

The process draws from its own RNG stream, so two schemes simulated with
the same seed face an *identical* workload (paired comparison).  An
optional :mod:`arrival process <repro.workload.arrivals>` modulates the
per-round request intensity from a second, independent stream; the
default ``periodic`` process leaves the query stream bitwise untouched.

Heavy-traffic bookkeeping: the catalogue is **pruned** — items whose
expiry lies more than one query constraint in the past can never be
queried, served, or counted live again, so they are dropped from every
index.  ``generated_items`` therefore exposes the *retained* items in
creation order (the cumulative count lives in
:attr:`WorkloadProcess.data_items_generated`), and the live-catalogue
views (:meth:`live_items`, :meth:`popularity_rank`) are O(live) per
round instead of O(history): items are kept popularity-ordered
incrementally and both views are memoised per (time, catalogue
version).
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.data import DataItem, Query
from repro.mathutils.zipf import ZipfDistribution
from repro.workload.arrivals import ArrivalProcess, build_arrivals
from repro.workload.config import WorkloadConfig

__all__ = ["WorkloadProcess"]


class WorkloadProcess:
    """Stateful generator of the paper's workload rounds."""

    def __init__(
        self,
        config: WorkloadConfig,
        num_nodes: int,
        rng: np.random.Generator,
        arrival_rng: Optional[np.random.Generator] = None,
    ):
        self.config = config
        self.num_nodes = int(num_nodes)
        self._rng = rng
        self._data_ids = itertools.count()
        self._generated: List[DataItem] = []
        self._by_id: Dict[int, DataItem] = {}
        self._popularity_key: Dict[int, float] = {}
        # Popularity order maintained incrementally: ``_ordered_keys`` is
        # the sorted list of (key, data_id) pairs and ``_ordered_items``
        # the matching items.  data_id is creation-ordered, so the pair
        # reproduces exactly what the old "stable sort by key over the
        # creation-ordered history" produced — live_items output stays
        # bitwise identical.
        self._ordered_keys: List[Tuple[float, int]] = []
        self._ordered_items: List[DataItem] = []
        self._queries_issued = 0
        self._data_items_generated = 0
        # Expired items stay resolvable for one query constraint (a
        # response for an expiring item is at most that old); beyond the
        # grace they are unreachable and pruned.
        self._retention_grace = config.query_time_constraint
        self._next_prune_at = float("inf")
        self._version = 0
        self._live_cache: Tuple[Tuple[float, int], List[DataItem]] = ((-1.0, -1), [])
        self._rank_cache: Tuple[Tuple[float, int], Dict[int, int]] = ((-1.0, -1), {})
        self._zipf: Optional[ZipfDistribution] = None

        self._arrivals: ArrivalProcess = build_arrivals(
            config.arrival_process, config.arrival_params
        )
        if self._arrivals.uses_rng and arrival_rng is None:
            # A stochastic process without a dedicated stream seeds one
            # from the workload stream (a single draw).  The default
            # periodic process never reaches this, so legacy callers see
            # an untouched workload stream.
            arrival_rng = np.random.default_rng(int(rng.integers(2**62)))
        if arrival_rng is not None:
            self._arrivals.bind(arrival_rng)

    # --- bookkeeping ------------------------------------------------------

    @property
    def generated_items(self) -> Sequence[DataItem]:
        """Retained (not yet pruned) data items, in creation order."""
        return tuple(self._generated)

    @property
    def data_items_generated(self) -> int:
        """Cumulative count of every item ever generated (prune-proof)."""
        return self._data_items_generated

    @property
    def queries_issued(self) -> int:
        return self._queries_issued

    @property
    def arrivals(self) -> ArrivalProcess:
        """The arrival process modulating query rounds."""
        return self._arrivals

    def set_window(self, start: float, end: float) -> None:
        """Tell the arrival process the evaluation window it spans."""
        self._arrivals.set_window(start, end)

    def live_items(self, now: float) -> List[DataItem]:
        """Unexpired items in Zipf rank order (most popular first)."""
        key = (now, self._version)
        if self._live_cache[0] == key:
            return list(self._live_cache[1])
        live = [
            d
            for d in self._ordered_items
            if not d.is_expired(now) and d.created_at <= now
        ]
        self._live_cache = (key, live)
        return list(live)

    def popularity_rank(self, data_id: int, now: float) -> "int | None":
        """1-based Zipf rank of a live item (None if not live/unknown)."""
        key = (now, self._version)
        if self._rank_cache[0] != key:
            ranks = {
                item.data_id: rank
                for rank, item in enumerate(self.live_items(now), start=1)
            }
            self._rank_cache = (key, ranks)
        return self._rank_cache[1].get(data_id)

    def item_by_id(self, data_id: int) -> "DataItem | None":
        """Catalogue lookup by data id (retained items only)."""
        return self._by_id.get(data_id)

    def nbytes(self) -> int:
        """Deep heap footprint of the workload catalogue in bytes: the
        retained :class:`DataItem` history, the id/popularity indices,
        the ordered views and their per-round memos.

        The catalogue owns the canonical item references; copies held in
        node buffers are attributed to the nodes subsystem (the
        documented by-holder overcount).
        """
        from repro.obs.memory import deep_sizeof

        return deep_sizeof(self)

    # --- pruning ---------------------------------------------------------

    def _prune(self, now: float) -> None:
        """Drop items expired for longer than the retention grace."""
        if now < self._next_prune_at:
            return
        horizon = now - self._retention_grace
        keep = [d for d in self._generated if d.expires_at >= horizon]
        if len(keep) != len(self._generated):
            self._generated = keep
            self._by_id = {d.data_id: d for d in keep}
            kept_ids = set(self._by_id)
            self._popularity_key = {
                data_id: key
                for data_id, key in self._popularity_key.items()
                if data_id in kept_ids
            }
            # Filtering preserves the existing popularity order.
            pairs = [
                (pair, item)
                for pair, item in zip(self._ordered_keys, self._ordered_items)
                if item.data_id in kept_ids
            ]
            self._ordered_keys = [pair for pair, _ in pairs]
            self._ordered_items = [item for _, item in pairs]
            self._version += 1
        self._next_prune_at = (
            min(d.expires_at for d in self._generated) + self._retention_grace
            if self._generated
            else float("inf")
        )

    # --- data round ------------------------------------------------------

    def data_round(self, now: float, nodes_with_live_data: Sequence[bool]) -> List[DataItem]:
        """One generation round at time *now*.

        ``nodes_with_live_data[i]`` tells whether node *i* still owns
        unexpired data (such nodes skip generation this round).
        """
        if len(nodes_with_live_data) != self.num_nodes:
            raise ValueError("nodes_with_live_data must cover every node")
        self._prune(now)
        lo_life, hi_life = self.config.lifetime_bounds
        lo_size, hi_size = self.config.size_bounds
        new_items: List[DataItem] = []
        for node in range(self.num_nodes):
            if nodes_with_live_data[node]:
                continue
            if self._rng.random() >= self.config.generation_probability:
                continue
            lifetime = self._rng.uniform(lo_life, hi_life)
            size = int(self._rng.uniform(lo_size, hi_size))
            item = DataItem(
                data_id=next(self._data_ids),
                source=node,
                size=max(1, size),
                created_at=now,
                expires_at=now + lifetime,
            )
            self._generated.append(item)
            self._by_id[item.data_id] = item
            key = float(self._rng.random())
            self._popularity_key[item.data_id] = key
            pair = (key, item.data_id)
            index = bisect.bisect_right(self._ordered_keys, pair)
            self._ordered_keys.insert(index, pair)
            self._ordered_items.insert(index, item)
            self._next_prune_at = min(
                self._next_prune_at, item.expires_at + self._retention_grace
            )
            new_items.append(item)
        if new_items:
            self._version += 1
            self._data_items_generated += len(new_items)
        return new_items

    # --- query round ---------------------------------------------------

    def query_round(
        self,
        now: float,
        holdings: Dict[int, set],
    ) -> List[Query]:
        """One query round at time *now*.

        ``holdings[node]`` is the set of data ids node already holds
        (own or cached); the node will not request those.
        """
        self._prune(now)
        live = self.live_items(now)
        if not live:
            return []
        # One shared distribution, re-normalised as the catalogue size
        # changes: resize() recomputes the weights exactly as a fresh
        # construction would, so the probabilities are bitwise identical
        # to the former per-round instantiation.
        if self._zipf is None:
            self._zipf = ZipfDistribution(len(live), self.config.zipf_exponent)
        else:
            self._zipf.resize(len(live))
        probabilities = self._zipf.pmf_vector()
        intensity = self._arrivals.round_intensity(now)
        if intensity != 1.0:
            # Poisson thinning / boosting of the per-rank Bernoulli
            # draws; the periodic default reports exactly 1.0 and skips
            # this so the paper-faithful stream stays untouched.
            probabilities = np.clip(probabilities * intensity, 0.0, 1.0)
        # One (nodes × ranks) fill of the RNG replaces the former
        # per-node draws: PCG64 fills a 2-D request row-major, so the
        # consumed stream — and hence every draw — is bitwise identical
        # to num_nodes sequential random(len(live)) calls.
        draws = self._rng.random((self.num_nodes, len(live)))
        hit_nodes, hit_ranks = np.nonzero(draws < probabilities)
        queries: List[Query] = []
        for node, rank_index in zip(hit_nodes.tolist(), hit_ranks.tolist()):
            item = live[rank_index]
            if item.source == node or item.data_id in holdings.get(node, frozenset()):
                continue
            queries.append(
                Query.create(
                    requester=node,
                    data_id=item.data_id,
                    created_at=now,
                    time_constraint=self.config.query_time_constraint,
                )
            )
        surge = self._arrivals.flash_fraction(now)
        if surge > 0.0:
            target = live[min(self._arrivals.flash_rank, len(live)) - 1]
            assert self._arrivals.rng is not None
            flash_draws = self._arrivals.rng.random(self.num_nodes)
            for node in np.nonzero(flash_draws < surge)[0].tolist():
                if (
                    target.source == node
                    or target.data_id in holdings.get(node, frozenset())
                ):
                    continue
                queries.append(
                    Query.create(
                        requester=node,
                        data_id=target.data_id,
                        created_at=now,
                        time_constraint=self.config.query_time_constraint,
                    )
                )
        self._queries_issued += len(queries)
        return queries
