"""Periodic data- and query-generation rounds (paper Sec. VI-A).

**Data rounds** run every T_L: each node that has no unexpired data of
its own generates a new item with probability p_G, with lifetime uniform
in [0.5·T_L, 1.5·T_L] and size uniform in [0.5·s_avg, 1.5·s_avg].

**Query rounds** run every T_L/2: each node walks the live data
catalogue and requests the item of Zipf rank j with probability P_j
(Eq. 8).  Every item draws a *permanent popularity key* at creation, and
live items are rank-ordered by that key: the catalogue stays Zipf-shaped
as items churn, while a freshly generated item can land anywhere in the
popularity order — which is precisely why the paper pushes new data to
the NCLs before any query arrives.  A node does not request data it
generated or currently caches.  Each query carries the fixed time
constraint T_L/2.

The process draws from its own RNG stream, so two schemes simulated with
the same seed face an *identical* workload (paired comparison).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

import numpy as np

from repro.core.data import DataItem, Query
from repro.mathutils.zipf import ZipfDistribution
from repro.workload.config import WorkloadConfig

__all__ = ["WorkloadProcess"]


class WorkloadProcess:
    """Stateful generator of the paper's workload rounds."""

    def __init__(
        self,
        config: WorkloadConfig,
        num_nodes: int,
        rng: np.random.Generator,
    ):
        self.config = config
        self.num_nodes = int(num_nodes)
        self._rng = rng
        self._data_ids = itertools.count()
        self._generated: List[DataItem] = []
        self._by_id: Dict[int, DataItem] = {}
        self._popularity_key: Dict[int, float] = {}
        self._queries_issued = 0

    # --- bookkeeping ------------------------------------------------------

    @property
    def generated_items(self) -> Sequence[DataItem]:
        """Every data item generated so far, in creation order."""
        return tuple(self._generated)

    @property
    def queries_issued(self) -> int:
        return self._queries_issued

    def live_items(self, now: float) -> List[DataItem]:
        """Unexpired items in Zipf rank order (most popular first)."""
        live = [
            d
            for d in self._generated
            if not d.is_expired(now) and d.created_at <= now
        ]
        live.sort(key=lambda d: self._popularity_key[d.data_id])
        return live

    def popularity_rank(self, data_id: int, now: float) -> "int | None":
        """1-based Zipf rank of a live item (None if not live/unknown)."""
        for rank, item in enumerate(self.live_items(now), start=1):
            if item.data_id == data_id:
                return rank
        return None

    def item_by_id(self, data_id: int) -> "DataItem | None":
        """Catalogue lookup by data id."""
        return self._by_id.get(data_id)

    # --- data round ------------------------------------------------------

    def data_round(self, now: float, nodes_with_live_data: Sequence[bool]) -> List[DataItem]:
        """One generation round at time *now*.

        ``nodes_with_live_data[i]`` tells whether node *i* still owns
        unexpired data (such nodes skip generation this round).
        """
        if len(nodes_with_live_data) != self.num_nodes:
            raise ValueError("nodes_with_live_data must cover every node")
        lo_life, hi_life = self.config.lifetime_bounds
        lo_size, hi_size = self.config.size_bounds
        new_items: List[DataItem] = []
        for node in range(self.num_nodes):
            if nodes_with_live_data[node]:
                continue
            if self._rng.random() >= self.config.generation_probability:
                continue
            lifetime = self._rng.uniform(lo_life, hi_life)
            size = int(self._rng.uniform(lo_size, hi_size))
            item = DataItem(
                data_id=next(self._data_ids),
                source=node,
                size=max(1, size),
                created_at=now,
                expires_at=now + lifetime,
            )
            self._generated.append(item)
            self._by_id[item.data_id] = item
            self._popularity_key[item.data_id] = float(self._rng.random())
            new_items.append(item)
        return new_items

    # --- query round ---------------------------------------------------

    def query_round(
        self,
        now: float,
        holdings: Dict[int, set],
    ) -> List[Query]:
        """One query round at time *now*.

        ``holdings[node]`` is the set of data ids node already holds
        (own or cached); the node will not request those.
        """
        live = self.live_items(now)
        if not live:
            return []
        zipf = ZipfDistribution(len(live), self.config.zipf_exponent)
        probabilities = zipf.pmf_vector()
        # One (nodes × ranks) fill of the RNG replaces the former
        # per-node draws: PCG64 fills a 2-D request row-major, so the
        # consumed stream — and hence every draw — is bitwise identical
        # to num_nodes sequential random(len(live)) calls.
        draws = self._rng.random((self.num_nodes, len(live)))
        hit_nodes, hit_ranks = np.nonzero(draws < probabilities)
        queries: List[Query] = []
        for node, rank_index in zip(hit_nodes.tolist(), hit_ranks.tolist()):
            item = live[rank_index]
            if item.source == node or item.data_id in holdings.get(node, frozenset()):
                continue
            queries.append(
                Query.create(
                    requester=node,
                    data_id=item.data_id,
                    created_at=now,
                    time_constraint=self.config.query_time_constraint,
                )
            )
        self._queries_issued += len(queries)
        return queries
