"""Workload parameters (paper Sec. VI-A).

Defaults reproduce the evaluation setup: p_G = 0.2; data lifetime uniform
in [0.5·T_L, 1.5·T_L] with decision period T_L; data size uniform in
[0.5·s_avg, 1.5·s_avg]; node caching buffers uniform in [200 Mb, 600 Mb];
queries follow a Zipf(s) law over the live data catalogue, are issued
every T_L/2, and carry the fixed time constraint T_L/2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.units import MEGABIT, WEEK

__all__ = ["WorkloadConfig"]


@dataclass(frozen=True)
class WorkloadConfig:
    """All knobs of the paper's synthetic workload.

    ``arrival_process`` selects how query intensity varies over the
    evaluation window (see :mod:`repro.workload.arrivals`); the default
    ``"periodic"`` is the paper's constant-rate round structure and is
    bitwise identical to the pre-arrival-process engine.
    ``arrival_params`` carries the process's own knobs as a plain
    name → number mapping so configs stay JSON round-trippable; the
    names are validated when the :class:`~repro.workload.generator.
    WorkloadProcess` is built (not here, to keep this module free of
    registry imports).
    """

    mean_data_lifetime: float = 1 * WEEK          # T_L
    mean_data_size: int = 100 * MEGABIT           # s_avg
    generation_probability: float = 0.2           # p_G
    zipf_exponent: float = 1.0                    # s
    buffer_min: int = 200 * MEGABIT
    buffer_max: int = 600 * MEGABIT
    arrival_process: str = "periodic"
    arrival_params: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.mean_data_lifetime <= 0:
            raise ConfigurationError("mean_data_lifetime must be positive")
        if self.mean_data_size <= 0:
            raise ConfigurationError("mean_data_size must be positive")
        if not 0.0 <= self.generation_probability <= 1.0:
            raise ConfigurationError("generation_probability must be in [0, 1]")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be non-negative")
        if not 0 < self.buffer_min <= self.buffer_max:
            raise ConfigurationError("buffer range must satisfy 0 < min <= max")
        if not self.arrival_process:
            raise ConfigurationError("arrival_process must be a non-empty name")
        if self.arrival_params is not None:
            for key, value in self.arrival_params.items():
                if not isinstance(value, (int, float)):
                    raise ConfigurationError(
                        f"arrival_params[{key!r}] must be a number"
                    )

    @property
    def data_generation_period(self) -> float:
        """Decision period for data generation — set to T_L (Sec. VI-A1)."""
        return self.mean_data_lifetime

    @property
    def query_generation_period(self) -> float:
        """Query-round period — every T_L/2 (Sec. VI-A2)."""
        return self.mean_data_lifetime / 2.0

    @property
    def query_time_constraint(self) -> float:
        """The fixed per-query constraint T_q = T_L/2 (Sec. VI-A2)."""
        return self.mean_data_lifetime / 2.0

    @property
    def lifetime_bounds(self) -> tuple:
        """Uniform lifetime support [0.5·T_L, 1.5·T_L]."""
        return (0.5 * self.mean_data_lifetime, 1.5 * self.mean_data_lifetime)

    @property
    def size_bounds(self) -> tuple:
        """Uniform size support [0.5·s_avg, 1.5·s_avg]."""
        return (0.5 * self.mean_data_size, 1.5 * self.mean_data_size)
