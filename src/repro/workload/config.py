"""Workload parameters (paper Sec. VI-A).

Defaults reproduce the evaluation setup: p_G = 0.2; data lifetime uniform
in [0.5·T_L, 1.5·T_L] with decision period T_L; data size uniform in
[0.5·s_avg, 1.5·s_avg]; node caching buffers uniform in [200 Mb, 600 Mb];
queries follow a Zipf(s) law over the live data catalogue, are issued
every T_L/2, and carry the fixed time constraint T_L/2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MEGABIT, WEEK

__all__ = ["WorkloadConfig"]


@dataclass(frozen=True)
class WorkloadConfig:
    """All knobs of the paper's synthetic workload."""

    mean_data_lifetime: float = 1 * WEEK          # T_L
    mean_data_size: int = 100 * MEGABIT           # s_avg
    generation_probability: float = 0.2           # p_G
    zipf_exponent: float = 1.0                    # s
    buffer_min: int = 200 * MEGABIT
    buffer_max: int = 600 * MEGABIT

    def __post_init__(self) -> None:
        if self.mean_data_lifetime <= 0:
            raise ConfigurationError("mean_data_lifetime must be positive")
        if self.mean_data_size <= 0:
            raise ConfigurationError("mean_data_size must be positive")
        if not 0.0 <= self.generation_probability <= 1.0:
            raise ConfigurationError("generation_probability must be in [0, 1]")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be non-negative")
        if not 0 < self.buffer_min <= self.buffer_max:
            raise ConfigurationError("buffer range must satisfy 0 < min <= max")

    @property
    def data_generation_period(self) -> float:
        """Decision period for data generation — set to T_L (Sec. VI-A1)."""
        return self.mean_data_lifetime

    @property
    def query_generation_period(self) -> float:
        """Query-round period — every T_L/2 (Sec. VI-A2)."""
        return self.mean_data_lifetime / 2.0

    @property
    def query_time_constraint(self) -> float:
        """The fixed per-query constraint T_q = T_L/2 (Sec. VI-A2)."""
        return self.mean_data_lifetime / 2.0

    @property
    def lifetime_bounds(self) -> tuple:
        """Uniform lifetime support [0.5·T_L, 1.5·T_L]."""
        return (0.5 * self.mean_data_lifetime, 1.5 * self.mean_data_lifetime)

    @property
    def size_bounds(self) -> tuple:
        """Uniform size support [0.5·s_avg, 1.5·s_avg]."""
        return (0.5 * self.mean_data_size, 1.5 * self.mean_data_size)
