"""Registry-selectable query arrival processes (heavy-traffic engine).

The paper issues queries at a constant rate: one query round every
T_L/2, each node requesting Zipf rank *j* with probability P_j (Eq. 8).
That is the :class:`PeriodicArrivals` process — the default, and
bitwise identical to the pre-arrival-process engine (it draws nothing
from the arrival RNG stream and reports intensity exactly ``1.0``, so
the query round takes the legacy fast path).

The other processes modulate the *per-round request intensity*: the
query round multiplies the Zipf pmf by ``round_intensity(now)`` (a
Poisson thinning of the per-rank Bernoulli draws — scaling the success
probability of each draw is equivalent to thinning a modulated arrival
stream rank by rank), clipping to [0, 1].  A flash crowd additionally
directs a surge of extra queries at the single most popular live item
through :meth:`ArrivalProcess.flash_fraction`.

Every process draws only from its **own** RNG stream (bound by the
workload process), so switching arrival processes never perturbs the
data-generation or query-placement draws: two runs with the same seed
and different arrival processes still generate the identical data
catalogue.

New processes register with::

    from repro.workload.arrivals import ARRIVALS

    @ARRIVALS.register("myprocess")
    class MyArrivals(ArrivalProcess):
        PARAMS = {"knob": 1.0}

``scripts/check_workload_registry.py`` enforces that every registered
name has a paired-determinism test.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Tuple, Type

import numpy as np

from repro.errors import ConfigurationError
from repro.registry import Registry

__all__ = [
    "ARRIVALS",
    "ArrivalProcess",
    "PeriodicArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "build_arrivals",
]


class ArrivalProcess:
    """Base class: constant intensity 1.0, no flash surges, no RNG use.

    Lifecycle: the owning :class:`~repro.workload.generator.
    WorkloadProcess` constructs the process from ``WorkloadConfig.
    arrival_params``, calls :meth:`bind` once with the dedicated arrival
    RNG stream, and :meth:`set_window` when the evaluation window is
    known.  ``round_intensity`` is then called exactly once per query
    round, in round order — stochastic processes consume a fixed number
    of draws per call so the stream stays reproducible.
    """

    #: declared knobs with defaults; unknown keys are rejected up front
    PARAMS: Mapping[str, float] = {}
    #: whether the process ever draws from the arrival RNG stream
    uses_rng: bool = False

    def __init__(self, params: Optional[Mapping[str, float]] = None):
        supplied = dict(params or {})
        unknown = sorted(set(supplied) - set(self.PARAMS))
        if unknown:
            raise ConfigurationError(
                f"unknown arrival parameter(s) {unknown} for "
                f"{type(self).__name__}; known: {sorted(self.PARAMS)}"
            )
        self.params: Dict[str, float] = {**self.PARAMS, **supplied}
        self.rng: Optional[np.random.Generator] = None
        self._window: Optional[Tuple[float, float]] = None

    def bind(self, rng: np.random.Generator) -> None:
        """Attach the dedicated arrival RNG stream (once, before use)."""
        self.rng = rng

    def set_window(self, start: float, end: float) -> None:
        """Announce the evaluation window [start, end) the rounds span."""
        if end <= start:
            raise ConfigurationError("arrival window must have positive length")
        self._window = (float(start), float(end))

    # --- per-round hooks -------------------------------------------------

    def round_intensity(self, now: float) -> float:
        """Multiplier on the Zipf request probabilities this round."""
        return 1.0

    def flash_fraction(self, now: float) -> float:
        """Per-node probability of one extra query for the flash target."""
        return 0.0

    def flash_window(self) -> Optional[Tuple[float, float]]:
        """The absolute [start, end) surge window, for processes that
        have one (None otherwise, and before :meth:`set_window`)."""
        return None

    @property
    def flash_rank(self) -> int:
        """1-based popularity rank of the flash-crowd target item."""
        return int(self.params.get("rank", 1))


#: arrival-process name → :class:`ArrivalProcess` subclass
ARRIVALS: Registry = Registry("arrival process")


@ARRIVALS.register("periodic")
class PeriodicArrivals(ArrivalProcess):
    """The paper's constant-rate rounds (Sec. VI-A2) — the default.

    Intensity is the exact float ``1.0`` every round, which the query
    round recognises as "multiply by nothing": the pmf array is used
    untouched and the produced query stream is bitwise identical to the
    engine before arrival processes existed.
    """


@ARRIVALS.register("bursty")
class BurstyArrivals(ArrivalProcess):
    """Markov-modulated bursts (a two-state MMPP thinned per rank).

    Each round the process draws **one** uniform to step a two-state
    (calm/burst) Markov chain: calm enters a burst with probability
    ``p_enter``; a burst ends with probability ``p_exit``.  The round's
    intensity is ``burst`` inside a burst and ``base`` outside, so the
    long-run stream alternates quiet stretches with arrival storms —
    the regime where bounded-memory metrics earn their keep.
    """

    PARAMS = {"base": 0.3, "burst": 3.0, "p_enter": 0.2, "p_exit": 0.5}
    uses_rng = True

    def __init__(self, params: Optional[Mapping[str, float]] = None):
        super().__init__(params)
        if self.params["base"] < 0 or self.params["burst"] < 0:
            raise ConfigurationError("bursty intensities must be non-negative")
        for key in ("p_enter", "p_exit"):
            if not 0.0 <= self.params[key] <= 1.0:
                raise ConfigurationError(f"bursty {key} must be in [0, 1]")
        self._bursting = False

    def round_intensity(self, now: float) -> float:
        assert self.rng is not None, "bind() must run before rounds"
        u = float(self.rng.random())
        if self._bursting:
            self._bursting = u >= self.params["p_exit"]
        else:
            self._bursting = u < self.params["p_enter"]
        return self.params["burst"] if self._bursting else self.params["base"]


@ARRIVALS.register("diurnal")
class DiurnalArrivals(ArrivalProcess):
    """Deterministic day/night cycle: ``1 + amplitude·sin(2πt/period)``.

    ``t`` is measured from the evaluation-window start (so the cycle
    phase is trace-independent), with an optional ``phase`` offset in
    radians.  The intensity is floored at 0 — an amplitude above 1
    silences the night-side rounds entirely.
    """

    PARAMS = {"amplitude": 0.5, "period": 86400.0, "phase": 0.0}

    def __init__(self, params: Optional[Mapping[str, float]] = None):
        super().__init__(params)
        if self.params["amplitude"] < 0:
            raise ConfigurationError("diurnal amplitude must be non-negative")
        if self.params["period"] <= 0:
            raise ConfigurationError("diurnal period must be positive")

    def round_intensity(self, now: float) -> float:
        origin = self._window[0] if self._window is not None else 0.0
        angle = (
            2.0 * math.pi * (now - origin) / self.params["period"]
            + self.params["phase"]
        )
        return max(0.0, 1.0 + self.params["amplitude"] * math.sin(angle))


@ARRIVALS.register("flash_crowd")
class FlashCrowdArrivals(ArrivalProcess):
    """Baseline rounds plus a surge targeting one popular item.

    During the flash window — starting at fraction ``at`` of the
    evaluation window and lasting fraction ``duration`` of it — every
    node additionally requests the live item of popularity rank
    ``rank`` with probability ``probability`` per round (drawn from the
    arrival stream, one uniform per node).  Outside the window the
    process is exactly the periodic baseline.
    """

    PARAMS = {"at": 0.5, "duration": 0.1, "probability": 0.5, "rank": 1}
    uses_rng = True

    def __init__(self, params: Optional[Mapping[str, float]] = None):
        super().__init__(params)
        if not 0.0 <= self.params["at"] <= 1.0:
            raise ConfigurationError("flash_crowd at must be in [0, 1]")
        if self.params["duration"] <= 0:
            raise ConfigurationError("flash_crowd duration must be positive")
        if not 0.0 <= self.params["probability"] <= 1.0:
            raise ConfigurationError("flash_crowd probability must be in [0, 1]")
        if self.params["rank"] < 1:
            raise ConfigurationError("flash_crowd rank must be >= 1")

    def flash_window(self) -> Optional[Tuple[float, float]]:
        if self._window is None:
            return None
        start, end = self._window
        span = end - start
        flash_start = start + self.params["at"] * span
        return (flash_start, flash_start + self.params["duration"] * span)

    def flash_fraction(self, now: float) -> float:
        window = self.flash_window()
        if window is not None and window[0] <= now < window[1]:
            return self.params["probability"]
        return 0.0


def build_arrivals(name: str, params: Optional[Mapping[str, float]]) -> ArrivalProcess:
    """Resolve *name* through :data:`ARRIVALS` and construct the process."""
    cls: Type[ArrivalProcess] = ARRIVALS.get(name)
    return cls(params)
