"""Workload generation (paper Sec. VI-A).

* :mod:`repro.workload.config` — parameters: generation probability
  p_G = 0.2, mean lifetime T_L, mean size s_avg, Zipf exponent s, node
  buffer range [200 Mb, 600 Mb].
* :mod:`repro.workload.generator` — the periodic data-generation and
  query-generation rounds the simulator executes.
"""

from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadProcess

__all__ = ["WorkloadConfig", "WorkloadProcess"]
