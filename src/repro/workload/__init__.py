"""Workload generation (paper Sec. VI-A) and the heavy-traffic engine.

* :mod:`repro.workload.config` — parameters: generation probability
  p_G = 0.2, mean lifetime T_L, mean size s_avg, Zipf exponent s, node
  buffer range [200 Mb, 600 Mb], plus the arrival-process selection.
* :mod:`repro.workload.generator` — the periodic data-generation and
  query-generation rounds the simulator executes.
* :mod:`repro.workload.arrivals` — registry-selectable arrival
  processes (periodic / bursty / diurnal / flash_crowd) modulating the
  per-round query intensity.
"""

from repro.workload.arrivals import ARRIVALS, ArrivalProcess, build_arrivals
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadProcess

__all__ = [
    "ARRIVALS",
    "ArrivalProcess",
    "WorkloadConfig",
    "WorkloadProcess",
    "build_arrivals",
]
