#!/usr/bin/env python
"""Arrival-process registry lint: every process has a determinism test.

The arrival registry (:data:`repro.workload.arrivals.ARRIVALS`) decides
what a ``WorkloadConfig.arrival_process`` may say.  Heavy-traffic runs
lean on the paired-workload contract — same seed ⇒ same query stream —
so an arrival process nobody determinism-tests is an arrival process
nobody can trust in a paired comparison.  Two invariants:

* **Determinism coverage** — every registered arrival-process name
  appears in the ``DETERMINISM_PROCESSES`` list of
  ``tests/workload/test_arrivals.py``, which parametrizes the
  same-seed ⇒ same-query-stream test.
* **Smoke coverage** — every registered name appears (as a whole word)
  somewhere under ``tests/``, mirroring the scenario-registry lint.

Run standalone (exit 1 on violations) or via the pytest wrapper in
``tests/workload/test_registry_lint.py``.
"""

from __future__ import annotations

import ast
import os
import re
import sys
from typing import Iterable, List, NamedTuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TESTS_ROOT = os.path.join(REPO_ROOT, "tests")
ARRIVALS_TEST = os.path.join(TESTS_ROOT, "workload", "test_arrivals.py")

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.workload.arrivals import ARRIVALS  # noqa: E402  (path bootstrap)


class Violation(NamedTuple):
    name: str
    problem: str

    def __str__(self) -> str:
        return f"arrival process {self.name!r}: {self.problem}"


def determinism_tested_names(test_path: str = ARRIVALS_TEST) -> List[str]:
    """The ``DETERMINISM_PROCESSES`` literal from the arrivals test.

    Parsed via AST rather than imported so the lint works without
    pytest's import machinery (conftest paths) and cannot execute test
    code.
    """
    tree = ast.parse(open(test_path, "r", encoding="utf-8").read())
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "DETERMINISM_PROCESSES" in targets:
                value = ast.literal_eval(node.value)
                if not isinstance(value, list) or not all(
                    isinstance(item, str) for item in value
                ):
                    raise TypeError("DETERMINISM_PROCESSES must be a list of names")
                return value
    raise LookupError(f"no DETERMINISM_PROCESSES list in {test_path}")


def iter_test_files(root: str = TESTS_ROOT) -> Iterable[str]:
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def collect_violations(tests_root: str = TESTS_ROOT) -> List[Violation]:
    violations: List[Violation] = []
    tested = set(determinism_tested_names())
    corpus = "\n".join(
        open(path, "r", encoding="utf-8").read() for path in iter_test_files(tests_root)
    )
    for name in ARRIVALS.names():
        if name not in tested:
            violations.append(
                Violation(name, "not in DETERMINISM_PROCESSES (test_arrivals.py)")
            )
        if not re.search(rf"\b{re.escape(name)}\b", corpus):
            violations.append(Violation(name, "no smoke test mentions this name"))
    for name in sorted(tested - set(ARRIVALS.names())):
        violations.append(
            Violation(name, "listed in DETERMINISM_PROCESSES but not registered")
        )
    return violations


def main() -> int:
    violations = collect_violations()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} arrival-registry violation(s)", file=sys.stderr)
        return 1
    names = ARRIVALS.names()
    print(f"all {len(names)} arrival processes are determinism-tested")
    return 0


if __name__ == "__main__":
    sys.exit(main())
