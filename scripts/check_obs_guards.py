#!/usr/bin/env python
"""AST lint: every observability hook site must read an ``enabled`` flag.

The zero-overhead contract (DESIGN.md Observability) demands that hot
code *never* constructs a :class:`TraceEvent`, opens a profiler span, or
records a time-series sample without first reading the instrument's
``enabled`` attribute — the disabled path must cost one attribute read.
This script walks the AST of every module under ``src/repro`` (the
``repro.obs`` package itself excluded — it implements the instruments)
and flags hook sites with no reachable ``.enabled`` guard.

Hook sites checked:

* ``TraceEvent(...)`` constructions and ``<recv>.emit(...)`` calls,
* ``<prof>.span(...)`` / ``<prof>.add(...)`` / ``<prof>.start(...)``
  calls on profiler-named receivers,
* ``<...timeseries...>.record(...)`` sampler calls,
* ``<...memory...>.sample(...)`` memory-monitor calls.

A site counts as guarded when an ``if``/ternary test reading
``.enabled`` **on a receiver of the same instrument family** (trace
hooks want a recorder-ish receiver, profiler hooks a profiler-ish one,
sampler hooks a sampler-ish one) appears in its enclosing-function
chain at or before the site's line.  The family match prevents a
profiler guard from silently "covering" a trace emit in the same
function.  That deliberately accepts the *creation-time* guard pattern
(``route_observer`` returns ``None`` unless
``services.recorder.enabled``, so the closure it builds only ever runs
enabled) alongside the common inline ``if prof.enabled:`` form.

Run standalone (exit 1 on violations) or via the pytest wrapper in
``tests/obs/test_guard_lint.py``.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterable, List, NamedTuple, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_ROOT = os.path.join(REPO_ROOT, "src", "repro")

#: The instruments package defines the hooks; it cannot guard itself.
EXCLUDED_PARTS = ("obs",)

TRACE_HINTS = ("recorder", "trace", "recording")
PROFILER_HINTS = ("prof", "profiler")
SAMPLER_HINTS = ("timeseries", "sampler")
MEMORY_HINTS = ("memory",)

#: hook family → receiver hints an ``.enabled`` guard must match
FAMILY_HINTS = {
    "trace": TRACE_HINTS,
    "profiler": PROFILER_HINTS,
    "sampler": SAMPLER_HINTS,
    "memory": MEMORY_HINTS,
}


class Violation(NamedTuple):
    path: str
    line: int
    hook: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: unguarded obs hook `{self.hook}`"


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted source of a receiver expression, lowercased."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _hook_name(call: ast.Call) -> Optional[Tuple[str, str]]:
    """``(hook, family)`` for a hook call site, or None if not one."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "TraceEvent":
        return "TraceEvent(...)", "trace"
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _dotted(func.value)
    if func.attr == "emit":
        return f"{receiver}.emit(...)", "trace"
    if func.attr in ("span", "add", "start") and any(
        hint in receiver for hint in PROFILER_HINTS
    ):
        return f"{receiver}.{func.attr}(...)", "profiler"
    if func.attr == "record" and any(hint in receiver for hint in SAMPLER_HINTS):
        return f"{receiver}.record(...)", "sampler"
    if func.attr == "sample" and any(hint in receiver for hint in MEMORY_HINTS):
        return f"{receiver}.sample(...)", "memory"
    return None


def _reads_enabled(test: ast.AST, hints: Tuple[str, ...]) -> bool:
    """Does *test* read ``.enabled`` on a receiver matching *hints*?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            receiver = _dotted(node.value)
            if any(hint in receiver for hint in hints):
                return True
    return False


def _guard_lines(scope: ast.AST, hints: Tuple[str, ...]) -> List[int]:
    """Lines of every family-matching ``.enabled`` branch test in *scope*."""
    lines = []
    for node in ast.walk(scope):
        if isinstance(node, (ast.If, ast.IfExp)) and _reads_enabled(node.test, hints):
            lines.append(node.lineno)
    return lines


def _check_module(path: str, source: str) -> List[Violation]:
    tree = ast.parse(source, filename=path)
    # Parent links let us recover each call's enclosing-function chain.
    parents = {
        child: parent for parent in ast.walk(tree) for child in ast.iter_child_nodes(parent)
    }
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        named = _hook_name(node)
        if named is None:
            continue
        hook, family = named
        # Outermost function enclosing the hook: guards anywhere inside
        # it (including outer creation-time guards before a closure's
        # ``def``) count, as long as they precede the hook's line.
        scope: ast.AST = node
        outermost: Optional[ast.AST] = None
        while scope in parents:
            scope = parents[scope]
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                outermost = scope
        searched = outermost if outermost is not None else tree
        hints = FAMILY_HINTS[family]
        if not any(line <= node.lineno for line in _guard_lines(searched, hints)):
            violations.append(Violation(os.path.relpath(path, REPO_ROOT), node.lineno, hook))
    return violations


def iter_source_files(root: str = SOURCE_ROOT) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        rel = os.path.relpath(dirpath, root)
        parts: Tuple[str, ...] = () if rel == "." else tuple(rel.split(os.sep))
        if parts and parts[0] in EXCLUDED_PARTS:
            dirnames[:] = []
            continue
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def collect_violations(root: str = SOURCE_ROOT) -> List[Violation]:
    violations: List[Violation] = []
    for path in iter_source_files(root):
        with open(path, "r", encoding="utf-8") as handle:
            violations.extend(_check_module(path, handle.read()))
    return violations


def main() -> int:
    violations = collect_violations()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} unguarded obs hook site(s)", file=sys.stderr)
        return 1
    print("all obs hook sites guard on `.enabled`")
    return 0


if __name__ == "__main__":
    sys.exit(main())
