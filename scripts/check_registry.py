#!/usr/bin/env python
"""Registry lint: every registered name is smoke tested and serializable.

The scenario registries (:mod:`repro.scenario.registry`) are the single
source of truth for what a scenario file can say.  Two invariants keep
them honest:

* **Smoke coverage** — every registered scheme, router, response
  strategy, and trace source name appears (as a whole word) in at least
  one test under ``tests/``.  A name nobody tests is a name nobody can
  trust from a scenario file.
* **JSON round-trip** — every scheme, trace-source, and
  response-strategy name survives
  ``ScenarioSpec.from_json(spec.to_json())`` unchanged, so any
  registered name is usable from ``--scenario`` files, not just from
  Python.

Run standalone (exit 1 on violations) or via the pytest wrapper in
``tests/scenario/test_registry_lint.py``.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, Iterable, List, NamedTuple, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TESTS_ROOT = os.path.join(REPO_ROOT, "tests")

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.scenario import (  # noqa: E402  (path bootstrap above)
    RESPONSE_STRATEGIES,
    ROUTERS,
    SCHEMES,
    TRACE_SOURCES,
    ScenarioSpec,
    SchemeSpec,
    TraceSpec,
)


class Violation(NamedTuple):
    kind: str
    name: str
    problem: str

    def __str__(self) -> str:
        return f"{self.kind} {self.name!r}: {self.problem}"


def registered_names() -> Dict[str, Tuple[str, ...]]:
    """Every registry's names, keyed by the registry's kind."""
    return {
        registry.kind: registry.names()
        for registry in (SCHEMES, ROUTERS, RESPONSE_STRATEGIES, TRACE_SOURCES)
    }


def iter_test_files(root: str = TESTS_ROOT) -> Iterable[str]:
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def check_smoke_coverage(tests_root: str = TESTS_ROOT) -> List[Violation]:
    """Every registered name must appear as a word in some test file."""
    corpus = "\n".join(
        open(path, "r", encoding="utf-8").read() for path in iter_test_files(tests_root)
    )
    violations = []
    for kind, names in registered_names().items():
        for name in names:
            if not re.search(rf"\b{re.escape(name)}\b", corpus):
                violations.append(
                    Violation(kind, name, "no smoke test mentions this name")
                )
    return violations


def check_round_trips() -> List[Violation]:
    """Scenario-facing names must survive the spec's JSON round-trip."""
    cases = [
        ("scheme", SCHEMES.names(), lambda n: ScenarioSpec(scheme=SchemeSpec(name=n))),
        (
            "trace source",
            TRACE_SOURCES.names(),
            lambda n: ScenarioSpec(trace=TraceSpec(name=n)),
        ),
        (
            "response strategy",
            RESPONSE_STRATEGIES.names(),
            lambda n: ScenarioSpec(scheme=SchemeSpec(response_strategy=n)),
        ),
    ]
    violations = []
    for kind, names, make in cases:
        for name in names:
            spec = make(name)
            try:
                restored = ScenarioSpec.from_json(spec.to_json())
            except Exception as exc:  # pragma: no cover - diagnostic path
                violations.append(Violation(kind, name, f"round-trip raised: {exc!r}"))
                continue
            if restored != spec:
                violations.append(
                    Violation(kind, name, "ScenarioSpec JSON round-trip not identity")
                )
    return violations


def collect_violations(tests_root: str = TESTS_ROOT) -> List[Violation]:
    return check_smoke_coverage(tests_root) + check_round_trips()


def main() -> int:
    violations = collect_violations()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} registry violation(s)", file=sys.stderr)
        return 1
    total = sum(len(names) for names in registered_names().values())
    print(f"all {total} registered names are smoke tested and round-trip")
    return 0


if __name__ == "__main__":
    sys.exit(main())
