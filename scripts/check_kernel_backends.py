#!/usr/bin/env python
"""AST lint: every registered kernel must keep its oracle and its tests.

The kernel-backend contract (DESIGN.md Performance) is that compiled
overrides are *optional accelerations* of a retained pure-python
implementation, pinned bit-for-bit by equivalence tests.  This script
enforces the structural half of that contract from the registry
declaration in ``repro.kernels.registry``:

* each ``KERNELS`` entry names a ``reference`` beginning with
  ``_reference_`` that is actually defined (function or assignment) in
  the entry's ``module`` source file;
* each reference name is mentioned in at least one file under
  ``tests/`` — the equivalence test must name the oracle it checks;
* the numba backend's ``build_overrides`` dict literal only registers
  known kernel names, and covers every kernel that is not *derived*
  (entries with a ``via`` key reuse another kernel's override and need
  none of their own);
* every kernel flagged ``sparse: True`` keeps a *dense* oracle: its
  ``_reference_*`` docstring must say so (the word "dense"), because a
  sparse kernel checked only against another sparse implementation could
  share its truncation bugs — the oracle must materialise the full
  matrix the sparse path avoids.

Both ``KERNELS`` and ``build_overrides`` are read as literals from the
AST — no imports, so the lint runs without numba installed and cannot
be fooled by runtime monkey-patching.

Run standalone (exit 1 on violations) or via the pytest wrapper in
``tests/kernels/test_backend_lint.py``.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Dict, List, NamedTuple, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_ROOT = os.path.join(REPO_ROOT, "src")
REGISTRY_PATH = os.path.join(SOURCE_ROOT, "repro", "kernels", "registry.py")
NUMBA_BACKEND_PATH = os.path.join(SOURCE_ROOT, "repro", "kernels", "numba_backend.py")
TESTS_ROOT = os.path.join(REPO_ROOT, "tests")
BENCHMARKS_ROOT = os.path.join(REPO_ROOT, "benchmarks")


class Violation(NamedTuple):
    where: str
    kernel: str
    message: str

    def __str__(self) -> str:
        return f"{self.where}: kernel {self.kernel!r}: {self.message}"


def _literal_dict_assignment(tree: ast.AST, name: str) -> Optional[dict]:
    """The literal value of a module-level ``name = {...}`` assignment."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets:
                try:
                    return ast.literal_eval(node.value)
                except ValueError:
                    return None
    return None


def _literal_return_dict(tree: ast.AST, function: str) -> Optional[dict]:
    """The literal dict a ``return {...}`` inside *function* evaluates to,
    with non-literal values (callables) replaced by their source names."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == function:
            for inner in ast.walk(node):
                if isinstance(inner, ast.Return) and isinstance(
                    inner.value, ast.Dict
                ):
                    result = {}
                    for key, value in zip(inner.value.keys, inner.value.values):
                        if not isinstance(key, ast.Constant):
                            return None
                        result[key.value] = ast.unparse(value)
                    return result
    return None


def _module_path(dotted: str) -> str:
    return os.path.join(SOURCE_ROOT, *dotted.split(".")) + ".py"


def _defined_names(path: str) -> set:
    """Top-level function/assignment names defined in a module file."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            names.update(t.id for t in node.targets if isinstance(t, ast.Name))
    return names


def _docstrings(path: str) -> Dict[str, str]:
    """Top-level function name → docstring for a module file."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    return {
        node.name: ast.get_docstring(node) or ""
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _test_corpus(roots=(TESTS_ROOT, BENCHMARKS_ROOT)) -> str:
    """Concatenated text of every test/benchmark file."""
    chunks: List[str] = []
    for root in roots:
        if not os.path.isdir(root):
            continue
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    path = os.path.join(dirpath, filename)
                    with open(path, "r", encoding="utf-8") as handle:
                        chunks.append(handle.read())
    return "\n".join(chunks)


def check_specs(
    kernels: Dict[str, dict],
    overrides: Optional[Dict[str, str]],
    defined_names: Dict[str, set],
    test_corpus: str,
    oracle_docs: Optional[Dict[str, str]] = None,
) -> List[Violation]:
    """Pure rule core (synthetic-input testable, no filesystem access).

    ``defined_names`` maps each kernel's dotted module to the names its
    source file defines; ``overrides`` is the numba ``build_overrides``
    key → callable-source mapping (None when the dict was unreadable);
    ``oracle_docs`` maps oracle names to their docstrings (used by the
    sparse-kernel dense-oracle rule; ``None`` skips that rule).
    """
    violations: List[Violation] = []
    for name, spec in sorted(kernels.items()):
        reference = spec.get("reference", "")
        module = spec.get("module", "")
        if not reference.startswith("_reference_"):
            violations.append(
                Violation(
                    "registry", name,
                    f"reference {reference!r} must be named _reference_*",
                )
            )
        if reference and reference not in defined_names.get(module, set()):
            violations.append(
                Violation(
                    "registry", name,
                    f"oracle {reference!r} is not defined in {module}",
                )
            )
        if reference and reference not in test_corpus:
            violations.append(
                Violation(
                    "tests", name,
                    f"no test names the oracle {reference!r} "
                    "(equivalence test missing?)",
                )
            )
        if spec.get("sparse") and oracle_docs is not None:
            doc = oracle_docs.get(reference, "")
            if "dense" not in doc.lower():
                violations.append(
                    Violation(
                        "registry", name,
                        f"sparse kernel's oracle {reference!r} is not "
                        "documented as a dense reference (its docstring "
                        "must say 'dense' — a sparse-vs-sparse check "
                        "would share the truncation bugs)",
                    )
                )
        via = spec.get("via")
        if via is not None and via not in kernels:
            violations.append(
                Violation("registry", name, f"via target {via!r} is not a kernel")
            )
    if overrides is None:
        violations.append(
            Violation(
                "numba_backend", "<all>",
                "build_overrides must return a literal dict with constant keys",
            )
        )
        return violations
    for name in sorted(overrides):
        if name not in kernels:
            violations.append(
                Violation(
                    "numba_backend", name,
                    "override for a name not registered in KERNELS",
                )
            )
    for name, spec in sorted(kernels.items()):
        if spec.get("via") is None and name not in overrides:
            violations.append(
                Violation(
                    "numba_backend", name,
                    "non-derived kernel has no numba override",
                )
            )
    return violations


def collect_violations() -> List[Violation]:
    with open(REGISTRY_PATH, "r", encoding="utf-8") as handle:
        registry_tree = ast.parse(handle.read(), filename=REGISTRY_PATH)
    kernels = _literal_dict_assignment(registry_tree, "KERNELS")
    if kernels is None:
        return [
            Violation(
                "registry", "<all>", "KERNELS must be a literal dict assignment"
            )
        ]
    with open(NUMBA_BACKEND_PATH, "r", encoding="utf-8") as handle:
        backend_tree = ast.parse(handle.read(), filename=NUMBA_BACKEND_PATH)
    overrides = _literal_return_dict(backend_tree, "build_overrides")
    defined = {
        spec["module"]: _defined_names(_module_path(spec["module"]))
        for spec in kernels.values()
        if "module" in spec
    }
    oracle_docs: Dict[str, str] = {}
    for spec in kernels.values():
        if "module" in spec:
            oracle_docs.update(_docstrings(_module_path(spec["module"])))
    return check_specs(kernels, overrides, defined, _test_corpus(), oracle_docs)


def main() -> int:
    violations = collect_violations()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} kernel-backend violation(s)", file=sys.stderr)
        return 1
    print("all registered kernels have oracles, tests, and overrides")
    return 0


if __name__ == "__main__":
    sys.exit(main())
