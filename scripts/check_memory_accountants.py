#!/usr/bin/env python
"""AST lint: the memory-attribution universe must stay fully accounted.

The memory-observability contract (DESIGN.md §7c) is that
``Simulator.memory_breakdown()`` attributes the run's footprint to the
named subsystems of ``repro.obs.memory.SUBSYSTEMS`` — and that every
accountant is *honest*, cross-checked by a test against an independent
sizeof oracle rather than trusted because it returns a number.  This
script enforces the structural half of that contract:

* ``SUBSYSTEMS`` (the attribution universe) is a literal dict with a
  non-empty description per name;
* the literal keys of the dict ``Simulator._build_memory_accountants``
  returns are exactly the ``SUBSYSTEMS`` names — no orphan subsystem
  without an accountant, no accountant outside the universe;
* every subsystem name has an ``oracle_nbytes_<name>`` mention in the
  test corpus — the per-subsystem accountant test must name the oracle
  function it checks the accountant against.

Both dicts are read as literals from the AST — no imports, so the lint
cannot be fooled by runtime registration tricks.

Run standalone (exit 1 on violations) or via the pytest wrapper in
``tests/obs/test_memory_lint.py``.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Dict, List, NamedTuple, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_ROOT = os.path.join(REPO_ROOT, "src")
MEMORY_PATH = os.path.join(SOURCE_ROOT, "repro", "obs", "memory.py")
SIMULATOR_PATH = os.path.join(SOURCE_ROOT, "repro", "sim", "simulator.py")
TESTS_ROOT = os.path.join(REPO_ROOT, "tests")
BENCHMARKS_ROOT = os.path.join(REPO_ROOT, "benchmarks")

#: the test that proves subsystem <name>'s accountant honest must
#: mention this identifier (convention mirrors the kernel oracles)
ORACLE_PREFIX = "oracle_nbytes_"


class Violation(NamedTuple):
    where: str
    subsystem: str
    message: str

    def __str__(self) -> str:
        return f"{self.where}: memory subsystem {self.subsystem!r}: {self.message}"


def _literal_dict_assignment(tree: ast.AST, name: str) -> Optional[dict]:
    """The literal value of a module-level ``name = {...}`` assignment."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets:
                try:
                    return ast.literal_eval(node.value)
                except ValueError:
                    return None
    return None


def _returned_dict_keys(tree: ast.AST, function: str) -> Optional[List[str]]:
    """Constant keys of the dict literal *function* returns.

    Values are closures (not literals), so only the keys are read;
    a non-constant key or a non-dict return yields ``None``.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == function:
            for inner in ast.walk(node):
                if isinstance(inner, ast.Return) and isinstance(
                    inner.value, ast.Dict
                ):
                    keys = []
                    for key in inner.value.keys:
                        if not isinstance(key, ast.Constant) or not isinstance(
                            key.value, str
                        ):
                            return None
                        keys.append(key.value)
                    return keys
    return None


def _test_corpus(roots=(TESTS_ROOT, BENCHMARKS_ROOT)) -> str:
    """Concatenated text of every test/benchmark file."""
    chunks: List[str] = []
    for root in roots:
        if not os.path.isdir(root):
            continue
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    path = os.path.join(dirpath, filename)
                    with open(path, "r", encoding="utf-8") as handle:
                        chunks.append(handle.read())
    return "\n".join(chunks)


def check_accountants(
    subsystems: Dict[str, str],
    accountant_keys: Optional[List[str]],
    test_corpus: str,
) -> List[Violation]:
    """Pure rule core (synthetic-input testable, no filesystem access)."""
    violations: List[Violation] = []
    for name, description in sorted(subsystems.items()):
        if not isinstance(description, str) or not description.strip():
            violations.append(
                Violation("SUBSYSTEMS", name, "description must be non-empty")
            )
        oracle = ORACLE_PREFIX + name
        if oracle not in test_corpus:
            violations.append(
                Violation(
                    "tests", name,
                    f"no test names the oracle {oracle!r} — the accountant "
                    "must be cross-checked against an independent sizeof "
                    "oracle, not trusted",
                )
            )
    if accountant_keys is None:
        violations.append(
            Violation(
                "simulator", "<all>",
                "_build_memory_accountants must return a dict literal with "
                "constant string keys (the lint reads them from the AST)",
            )
        )
        return violations
    registered = set(accountant_keys)
    for name in sorted(set(subsystems) - registered):
        violations.append(
            Violation(
                "simulator", name,
                "in SUBSYSTEMS but never registered by "
                "_build_memory_accountants — its bytes would be invisible",
            )
        )
    for name in sorted(registered - set(subsystems)):
        violations.append(
            Violation(
                "simulator", name,
                "registered by _build_memory_accountants but missing from "
                "SUBSYSTEMS — add it to the universe deliberately",
            )
        )
    duplicates = sorted(
        {name for name in accountant_keys if accountant_keys.count(name) > 1}
    )
    for name in duplicates:
        violations.append(
            Violation("simulator", name, "registered more than once")
        )
    return violations


def collect_violations() -> List[Violation]:
    with open(MEMORY_PATH, "r", encoding="utf-8") as handle:
        memory_tree = ast.parse(handle.read(), filename=MEMORY_PATH)
    subsystems = _literal_dict_assignment(memory_tree, "SUBSYSTEMS")
    if subsystems is None:
        return [
            Violation(
                "SUBSYSTEMS", "<all>",
                "SUBSYSTEMS must be a literal dict assignment",
            )
        ]
    with open(SIMULATOR_PATH, "r", encoding="utf-8") as handle:
        simulator_tree = ast.parse(handle.read(), filename=SIMULATOR_PATH)
    accountant_keys = _returned_dict_keys(
        simulator_tree, "_build_memory_accountants"
    )
    return check_accountants(subsystems, accountant_keys, _test_corpus())


def main() -> int:
    violations = collect_violations()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} memory-accountant violation(s)", file=sys.stderr)
        return 1
    print(
        "all memory subsystems have accountants and oracle-backed tests"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
