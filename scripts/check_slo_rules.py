#!/usr/bin/env python
"""SLO rule lint: every registered rule targets a real snapshot field.

The SLO engine evaluates rules with ``getattr(snapshot, rule.field)``,
so a rule whose ``field`` doesn't name a :class:`HealthSnapshot`
attribute would raise at serve time — long after the config parsed
cleanly.  This lint closes the gap statically: every rule in
``SLO_PRESETS`` (the set users reach by name via ``--slo availability``)
must

* name an existing, *numeric* snapshot field (``bool`` flags and the
  window-identity fields ``index``/``start``/``end`` are not
  monitorable signals),
* use a registered comparison op with a finite target and a positive
  sustain count, and
* round-trip through :func:`parse_slo_rule` via its ``spec`` string, so
  the CLI can always re-parse what the preset table prints.

Run standalone (exit 1 on violations) or via the pytest wrapper in
``tests/obs/test_slo_rules_lint.py``.
"""

from __future__ import annotations

import dataclasses
import math
import os
import sys
from typing import List, NamedTuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.health import HealthSnapshot  # noqa: E402
from repro.obs.slo import SLO_PRESETS, parse_slo_rule  # noqa: E402

#: Snapshot fields a rule may legitimately target: numeric observations.
#: Window identity (index/start/end) and boolean flags are excluded —
#: comparing ``start >= 42`` is a config bug, not a health signal.
_IDENTITY_FIELDS = frozenset({"index", "start", "end"})

MONITORABLE_FIELDS = frozenset(
    field.name
    for field in dataclasses.fields(HealthSnapshot)
    if field.name not in _IDENTITY_FIELDS and field.type in ("int", "float", int, float)
)

VALID_OPS = frozenset({">=", "<="})


class Violation(NamedTuple):
    rule: str
    problem: str

    def __str__(self) -> str:
        return f"SLO rule {self.rule!r}: {self.problem}"


def check_fields() -> List[Violation]:
    """Every preset targets a monitorable HealthSnapshot field."""
    violations = []
    for name, rule in SLO_PRESETS.items():
        if rule.field not in MONITORABLE_FIELDS:
            violations.append(
                Violation(
                    name,
                    f"field {rule.field!r} is not a numeric HealthSnapshot "
                    f"field (monitorable: {', '.join(sorted(MONITORABLE_FIELDS))})",
                )
            )
    return violations


def check_shape() -> List[Violation]:
    """Ops, targets, and sustain windows are well-formed."""
    violations = []
    for name, rule in SLO_PRESETS.items():
        if rule.op not in VALID_OPS:
            violations.append(Violation(name, f"op {rule.op!r} not in {sorted(VALID_OPS)}"))
        if not math.isfinite(rule.target):
            violations.append(Violation(name, f"target {rule.target!r} is not finite"))
        if rule.sustain < 1:
            violations.append(Violation(name, f"sustain {rule.sustain} must be >= 1"))
        if name != rule.name:
            violations.append(
                Violation(name, f"preset key differs from rule.name {rule.name!r}")
            )
    return violations


def check_spec_round_trip() -> List[Violation]:
    """``rule.spec`` re-parses to an equivalent rule via parse_slo_rule."""
    violations = []
    for name, rule in SLO_PRESETS.items():
        try:
            parsed = parse_slo_rule(rule.spec)
        except Exception as exc:  # pragma: no cover - defensive
            violations.append(Violation(name, f"spec {rule.spec!r} failed to parse: {exc}"))
            continue
        got = (parsed.field, parsed.op, parsed.target, parsed.sustain)
        want = (rule.field, rule.op, rule.target, rule.sustain)
        if got != want:
            violations.append(
                Violation(name, f"spec {rule.spec!r} round-tripped to {got}, not {want}")
            )
    return violations


def collect_violations() -> List[Violation]:
    return check_fields() + check_shape() + check_spec_round_trip()


def main() -> int:
    violations = collect_violations()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} SLO rule violation(s)", file=sys.stderr)
        return 1
    print(
        f"all {len(SLO_PRESETS)} registered SLO rules target monitorable "
        "snapshot fields and round-trip through the parser"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
