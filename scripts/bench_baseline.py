#!/usr/bin/env python
"""Run the kernel benchmarks and guard against regression.

Thin wrapper over :mod:`repro.experiments.benchguard`; equivalent to
``python -m repro bench``.  Writes ``BENCH_kernels.json`` and exits
non-zero if any kernel regressed more than 1.5x against the committed
``benchmarks/kernels_baseline.json``.  Pass ``--update-baseline`` to
regenerate the baseline instead (e.g. on new hardware).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.benchguard import main

if __name__ == "__main__":
    sys.exit(main())
