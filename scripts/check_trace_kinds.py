#!/usr/bin/env python
"""TraceEventKind lint: naming grammar + diagnose-parser coverage.

The lifecycle trace's event vocabulary grew in two eras: the original
PR 2 kinds are bare ``snake_case`` values (``query_created``,
``response_delivered``, …) while every kind added since (network
dynamics, push custody) uses the dotted ``<namespace>.<event>`` grammar
(``node.failed``, ``cache.migrated``, ``push.forwarded``).  Both are
valid on disk forever — traces are archives — but the split must stay
*frozen*: no new bare snake_case kinds (the legacy set is closed), and
every dotted kind must follow the grammar with a matching member name.

The second invariant protects ``repro diagnose``: the causal
reconstruction (:mod:`repro.obs.causality`) dispatches on kinds, and an
event kind it neither handles nor explicitly ignores would be dropped
silently — a chain with missing hops and no error.  Every
:class:`TraceEventKind` member must therefore appear in
``causality.HANDLED_KINDS`` or ``causality.IGNORED_KINDS``.

Run standalone (exit 1 on violations) or via the pytest wrapper in
``tests/obs/test_trace_kind_lint.py``.
"""

from __future__ import annotations

import os
import re
import sys
from typing import List, NamedTuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.causality import HANDLED_KINDS, IGNORED_KINDS  # noqa: E402
from repro.obs.events import TraceEventKind  # noqa: E402

#: The closed set of pre-grammar kinds (PR 2).  Frozen: additions to the
#: enum must use the dotted grammar, never extend this list.
LEGACY_SNAKE_KINDS = frozenset(
    {
        "data_generated",
        "push_completed",
        "data_expired",
        "query_created",
        "query_observed",
        "response_decided",
        "response_emitted",
        "response_forwarded",
        "response_delivered",
        "query_satisfied",
        "route_decision",
        "exchange",
        "sample",
    }
)

#: Dotted grammar for post-PR 2 kinds: lowercase namespace, dot,
#: lowercase snake_case event (``node.failed``, ``push.forwarded``).
DOTTED_GRAMMAR = re.compile(r"^[a-z]+(\.[a-z]+(_[a-z]+)*)+$")

#: The registered first-segment namespaces of the dotted grammar.  A new
#: kind in an existing namespace just works; a new *namespace* must be
#: added here deliberately (one line, reviewed), so a typo'd prefix
#: (``slos.violated``) can't slip in as a fresh namespace unnoticed.
KNOWN_NAMESPACES = frozenset(
    {
        "push",        # custody of push copies
        "node",        # churn: joins, departures, failures
        "ncl",         # central-node re-election
        "cache",       # cached-copy migration
        "delivery",    # duplicate/late delivery classification
        "slo",         # live-health SLO state edges
        "health",      # anomaly detector firings
        "workload",    # workload announcements (flash-crowd window)
        "memory",      # footprint telemetry (RSS/heap/attribution samples)
    }
)


class Violation(NamedTuple):
    kind: str
    problem: str

    def __str__(self) -> str:
        return f"TraceEventKind {self.kind!r}: {self.problem}"


def check_grammar() -> List[Violation]:
    """Every kind is legacy-frozen snake_case or dotted-grammar."""
    violations = []
    for member in TraceEventKind:
        value = member.value
        if value in LEGACY_SNAKE_KINDS:
            continue
        if not DOTTED_GRAMMAR.match(value):
            violations.append(
                Violation(
                    value,
                    "new kinds must use the dotted grammar "
                    "`namespace.event` (the legacy snake_case set is closed)",
                )
            )
    return violations


def check_namespaces() -> List[Violation]:
    """Every dotted kind's first segment is a registered namespace."""
    violations = []
    for member in TraceEventKind:
        value = member.value
        if value in LEGACY_SNAKE_KINDS or "." not in value:
            continue
        namespace = value.split(".", 1)[0]
        if namespace not in KNOWN_NAMESPACES:
            violations.append(
                Violation(
                    value,
                    f"namespace {namespace!r} is not registered in "
                    "KNOWN_NAMESPACES (add it deliberately or fix the typo)",
                )
            )
    return violations


def check_member_names() -> List[Violation]:
    """Member name must be the value with dots as underscores, uppercased."""
    violations = []
    for member in TraceEventKind:
        expected = member.value.replace(".", "_").upper()
        if member.name != expected:
            violations.append(
                Violation(
                    member.value,
                    f"member name {member.name} should be {expected}",
                )
            )
    return violations


def check_parser_coverage() -> List[Violation]:
    """The causality parser must handle or explicitly ignore every kind."""
    violations = []
    covered = HANDLED_KINDS | IGNORED_KINDS
    for member in TraceEventKind:
        if member not in covered:
            violations.append(
                Violation(
                    member.value,
                    "not in causality.HANDLED_KINDS or IGNORED_KINDS — "
                    "the diagnose parser would drop it silently",
                )
            )
    for member in HANDLED_KINDS & IGNORED_KINDS:
        violations.append(
            Violation(member.value, "both handled and ignored — pick one")
        )
    return violations


def collect_violations() -> List[Violation]:
    return (
        check_grammar()
        + check_namespaces()
        + check_member_names()
        + check_parser_coverage()
    )


def main() -> int:
    violations = collect_violations()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} trace-kind violation(s)", file=sys.stderr)
        return 1
    print(
        f"all {len(list(TraceEventKind))} trace event kinds follow the "
        "naming grammar and are covered by the diagnose parser"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
