"""Benchmark: regenerate Fig. 13 (impact of the number of NCLs).

Paper shapes asserted: caching overhead grows with K, and very large K
stops improving the successful ratio (the plateau the paper reports).
"""

from repro.experiments.figures import fig13
from repro.experiments.report import render_figure

NCL_COUNTS = (1, 3, 5, 8)
SIZES_MB = (100,)


def run(bench_scale):
    return fig13(bench_scale, ncl_counts=NCL_COUNTS, sizes_mb=SIZES_MB)


def test_bench_fig13(benchmark, bench_scale):
    figures = benchmark.pedantic(run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    for suffix in ("a", "b", "c"):
        print(render_figure(figures[suffix], chart=False))

    ratio = figures["a"].series[0].y
    copies = figures["c"].series[0].y

    assert all(0.0 <= v <= 1.0 for v in ratio)
    # shape: more NCLs -> more cached copies (Fig. 13c)
    assert copies[-1] > copies[0]
    # shape: the plateau — going from K=5 to K=8 changes the ratio far
    # less than the whole sweep's spread
    spread = max(ratio) - min(ratio)
    assert abs(ratio[-1] - ratio[-2]) <= max(spread, 0.05) + 1e-9
