"""Ablation benchmark: NCL selection strategy (Sec. IV's core claim).

The paper argues that *appropriate* NCL selection — the Eq. (3)
probabilistic metric — is what makes intentional caching effective.
This ablation swaps the selection strategy (metric / degree / aggregate
contact rate / random) inside the otherwise-identical scheme and
compares outcomes: random placement should trail the informed
strategies.
"""

from repro.caching.intentional import IntentionalCaching, IntentionalConfig
from repro.core.ncl import SELECTION_STRATEGIES
from repro.experiments.configs import BENCH_SCALE, load_scaled_trace
from repro.experiments.runner import run_single
from repro.traces.catalog import TRACE_PRESETS
from repro.units import MEGABIT
from repro.workload.config import WorkloadConfig


def test_bench_ablation_ncl_selection(benchmark):
    preset = TRACE_PRESETS["mit_reality"]
    trace = load_scaled_trace("mit_reality", BENCH_SCALE)
    workload = WorkloadConfig(
        mean_data_lifetime=trace.duration * 0.1,
        mean_data_size=100 * MEGABIT,
    )

    def run():
        results = {}
        for strategy in SELECTION_STRATEGIES:
            scheme = IntentionalCaching(
                IntentionalConfig(
                    num_ncls=preset.default_num_ncls,
                    ncl_time_budget=preset.ncl_time_budget,
                    selection_strategy=strategy,
                )
            )
            results[strategy] = run_single(trace, scheme, workload, seed=7)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for strategy, result in results.items():
        print(
            f"{strategy:16s} ratio={result.successful_ratio:.3f} "
            f"copies={result.caching_overhead:.2f}"
        )
    # informed selection should not lose to random placement
    informed = max(
        results["metric"].successful_ratio,
        results["aggregate_rate"].successful_ratio,
    )
    assert informed >= results["random"].successful_ratio * 0.95
