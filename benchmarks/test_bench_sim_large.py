"""Opt-in large-scale benchmarks: the 10⁵-node sparse scale-out tier.

Set ``REPRO_BIG_TESTS=1`` to enable (several minutes of wall clock);
the tier-1 suite and the default bench guard never run these.  Guarded
baseline lives in ``benchmarks/sim_large_baseline.json``:

    REPRO_BIG_TESTS=1 python -m repro bench \
        --benchmark-file benchmarks/test_bench_sim_large.py \
        --baseline benchmarks/sim_large_baseline.json [--update-baseline]

Each benchmark also acts as a memory guard twice over: peak RSS
(:func:`repro.obs.memory.peak_rss_bytes`, whole process, high-water
mark) must stay under the documented budget *here*, and the same peak
plus the per-subsystem attribution of ``Simulator.memory_breakdown()``
is stamped into ``extra_info`` so the bench guard's memory tier fails
any future run whose footprint grows past 1.2x the committed baseline.
The in-file budgets are deliberately loose bounds on the documented
measurements (README "Large-scale quickstart") — they catch an
accidental return of an N×N allocation (80 GB at 10⁵ nodes), not
kilobyte-level drift.
"""

import os

import pytest

from repro.graph.contact_graph import ContactGraph
from repro.obs.memory import peak_rss_bytes
from repro.scenario import (
    RunSpec,
    ScenarioSpec,
    SchemeSpec,
    TraceSpec,
    build_trace,
    scheme_factory,
    simulator_config,
)
from repro.sim.simulator import Simulator
from repro.workload.config import WorkloadConfig

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BIG_TESTS") != "1",
    reason="large-scale tier is opt-in: set REPRO_BIG_TESTS=1",
)

#: Peak-RSS budgets (MB).  A dense 10⁵×10⁵ float64 matrix alone would
#: be ~80 000 MB, so these bounds prove the sparse path held.  Measured
#: on the reference box: setup ≈ 0.8 GB, end-to-end ≈ 18 GB (the
#: simulator's per-node/per-query state dominates, not the graph — see
#: the attributed breakdown in README "Memory profiling").
SETUP_RSS_BUDGET_MB = 2_000
END_TO_END_RSS_BUDGET_MB = 24_000


def _peak_rss_mb() -> float:
    return peak_rss_bytes() / 2**20


def _spec(node_factor: float, time_factor: float, duration_fraction: float = 0.25):
    trace_spec = TraceSpec(
        name="sparse1e5", seed=1, node_factor=node_factor, time_factor=time_factor
    )
    trace = build_trace(trace_spec)
    spec = ScenarioSpec(
        trace=trace_spec,
        scheme=SchemeSpec(num_ncls=32),
        workload=WorkloadConfig(
            mean_data_lifetime=trace.duration * duration_fraction,
            mean_data_size=100_000_000,
        ),
        # One estimation per phase: at this scale the interesting cost is
        # the sparse pipeline itself, not the refresh cadence.
        run=RunSpec(graph_refresh_period=trace.duration),
    )
    return trace, spec


def test_bench_large_setup_1e5(benchmark):
    """Stream → sparse graph → k-NN NCL selection at the full 10⁵ nodes.

    This is the pure scale-out path: no dense matrix may be allocated
    anywhere (``rate_matrix()`` raises on sparse graphs above the
    threshold), and the whole setup must fit the documented budget.

    ``ru_maxrss`` is a process-wide high-water mark, so this test must
    stay first in the file — after the end-to-end runs the ceiling
    would reflect their footprint, not setup's.
    """
    from repro.core.ncl import select_ncls
    from repro.traces.catalog import STREAM_PRESETS

    trace, _spec_unused = _spec(node_factor=1.0, time_factor=0.05)

    def setup():
        graph = ContactGraph.from_trace(trace)
        assert graph.is_sparse
        selection = select_ncls(
            graph, 32, STREAM_PRESETS["sparse1e5"].ncl_time_budget
        )
        return graph, selection

    graph, selection = benchmark.pedantic(setup, rounds=1, iterations=1)
    assert graph.num_nodes == 100_000
    assert len(selection.central_nodes) == 32
    peak = _peak_rss_mb()
    benchmark.extra_info["peak_rss_mb"] = peak
    assert peak < SETUP_RSS_BUDGET_MB, f"peak RSS {peak:.0f} MB over budget"


def test_bench_large_end_to_end_1e5(benchmark):
    """Full simulation at 10⁵ nodes on a time-scaled stream.

    ``time_factor=0.05`` keeps the event count benchmarkable while the
    node dimension — the one the sparse core exists for — stays at the
    full 100 000.  ``duration_fraction=0.5`` halves the query rounds:
    query volume scales with the node count, and at 10⁵ nodes the
    default cadence would make this a half-hour benchmark.

    Runs with ``mem_profile`` on, so the stamped ``mem_subsystems``
    attribution says *which* subsystem owns the documented ~18 GB — the
    bench guard's memory tier then holds both the total and the shape.
    """
    trace, spec = _spec(node_factor=1.0, time_factor=0.05, duration_fraction=0.5)
    spec = ScenarioSpec(
        trace=spec.trace,
        scheme=spec.scheme,
        workload=spec.workload,
        run=RunSpec(
            graph_refresh_period=trace.duration,
            mem_profile=True,
        ),
    )

    def run():
        sim = Simulator(
            trace, scheme_factory(spec)(), spec.workload, simulator_config(spec)
        )
        return sim, sim.run()

    sim, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.queries_issued > 0
    assert sim.memory.samples, "mem_profile produced no samples"
    peak = _peak_rss_mb()
    benchmark.extra_info["peak_rss_mb"] = peak
    benchmark.extra_info["mem_subsystems"] = sim.memory_breakdown()
    assert peak < END_TO_END_RSS_BUDGET_MB, f"peak RSS {peak:.0f} MB over budget"


def test_bench_large_end_to_end_20k(benchmark):
    """Mid-scale end-to-end point (20k nodes) for trend visibility
    between the tier-1 scales and the full 10⁵ run."""
    trace, spec = _spec(node_factor=0.2, time_factor=0.25)

    def run():
        sim = Simulator(
            trace, scheme_factory(spec)(), spec.workload, simulator_config(spec)
        )
        return sim, sim.run()

    sim, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.queries_issued > 0
    benchmark.extra_info["peak_rss_mb"] = _peak_rss_mb()
    benchmark.extra_info["mem_subsystems"] = sim.memory_breakdown()
