"""Benchmark: regenerate Figs. 7 and 9 (illustration + setup figures)."""

import pytest

from repro.experiments.figures import fig7, fig9a, fig9b
from repro.experiments.report import render_figure


def test_bench_fig7(benchmark):
    result = benchmark.pedantic(fig7, rounds=1, iterations=1)
    series = result.series[0]
    # Eq. (4) boundary conditions and monotonicity
    assert series.y[0] == pytest.approx(0.45)
    assert series.y[-1] == pytest.approx(0.8)
    assert series.y == sorted(series.y)


def test_bench_fig9a(benchmark, bench_scale):
    result = benchmark.pedantic(fig9a, args=(bench_scale,), rounds=1, iterations=1)
    print()
    print(render_figure(result, chart=False))
    generated = next(s for s in result.series if "generated" in s.label)
    # paper shape: fewer generation rounds at longer lifetimes
    assert generated.y[0] > generated.y[-1]


def test_bench_fig9b(benchmark):
    result = benchmark.pedantic(fig9b, kwargs={"num_items": 50}, rounds=1, iterations=1)
    print()
    print(render_figure(result, chart=False))
    by_label = {s.label: s for s in result.series}
    assert by_label["s=1.5"].y[0] > by_label["s=1"].y[0] > by_label["s=0.5"].y[0]
    for series in result.series:
        assert sum(series.y) == pytest.approx(1.0)
