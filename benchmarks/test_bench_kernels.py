"""Microbenchmarks of the computational kernels.

Unlike the figure benchmarks (whole simulation sweeps, pedantic
single-round), these measure the hot inner loops with normal
pytest-benchmark statistics: the Eq. (2) path weight, the single-source
opportunistic-path computation, the Eq. (3) metric over a full graph,
and the Eq. (7) knapsack under realistic buffer sizes.

The registered kernels run once per available backend (``[python]``
always; ``[numba]`` when the optional extra is installed) via the
``backend`` fixture, which warms the JIT before the timed rounds so
compile cost never pollutes a measurement.  The bench guard pairs the
two parameterizations into its compiled-vs-python speedup table, and
``test_speedup_numba_vs_python`` asserts the ≥3x acceptance floor on
the N=200 inputs while pinning bitwise agreement between backends.
"""

import os
import time

import numpy as np
import pytest

from repro import kernels
from repro.caching.nocache import NoCache
from repro.core.data import Query
from repro.core.knapsack import KnapsackItem, solve_knapsack
from repro.experiments.serve import ServeSession
from repro.metrics.collector import MetricsCollector
from repro.core.ncl import _reference_ncl_metrics, ncl_metrics
from repro.experiments.runner import run_repeated
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import shortest_path_weight_matrix, shortest_paths_from
from repro.graph.weight_cache import shared_weight_cache
from repro.obs.memory import peak_rss_bytes
from repro.obs.profile import Profiler, set_active_profiler
from repro.mathutils.hypoexponential import (
    hypoexponential_cdf,
    hypoexponential_cdf_batch,
    pad_rate_rows,
)
from repro.traces.catalog import TRACE_PRESETS
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT, WEEK
from repro.workload.config import WorkloadConfig


def _mit_graph():
    config = TRACE_PRESETS["mit_reality"].synthetic_config(
        seed=1, node_factor=0.6, time_factor=0.12
    )
    return ContactGraph.from_trace(generate_synthetic_trace(config))


def _large_graph(num_nodes=200):
    """A 200-node contact graph: the scale at which per-event Python
    overhead starts to dominate and the compiled backend must pay off."""
    return ContactGraph.from_trace(
        generate_synthetic_trace(
            SyntheticTraceConfig(
                name=f"bench-n{num_nodes}",
                num_nodes=num_nodes,
                duration=4 * DAY,
                total_contacts=num_nodes * 40,
                granularity=60.0,
                seed=9,
            )
        )
    )


def _knapsack_items(count, seed=3):
    rng = np.random.default_rng(seed)
    return [
        KnapsackItem(i, float(rng.random()), int(rng.uniform(20, 200) * MEGABIT))
        for i in range(count)
    ]


@pytest.fixture(params=kernels.available_backend_names())
def backend(request):
    """Run the decorated benchmark once per installed kernel backend.

    JIT compilation happens in :func:`repro.kernels.warmup` before the
    timed rounds, so the numba parameterization measures steady-state
    kernel time, not compile time.
    """
    with kernels.use_backend(request.param):
        kernels.warmup()
        yield request.param


def test_bench_kernel_path_weight(benchmark):
    rates = [1 / 3600.0, 1 / 7200.0, 1 / 1800.0, 1 / 5400.0]
    value = benchmark(hypoexponential_cdf, rates, 6 * 3600.0)
    assert 0.0 < value < 1.0


def test_bench_kernel_single_source_paths(benchmark):
    graph = _mit_graph()
    paths = benchmark(shortest_paths_from, graph, 0, 1 * WEEK)
    assert len(paths) >= 1


def test_bench_kernel_ncl_metrics(benchmark, backend):
    graph = _mit_graph()

    def cold_metrics():
        # Clear the shared cache so each round measures the kernel,
        # not a cache hit on the previous round's result.
        shared_weight_cache().clear()
        return ncl_metrics(graph, 1 * WEEK)

    metrics = benchmark.pedantic(cold_metrics, rounds=2, iterations=1)
    assert len(metrics) == graph.num_nodes


def test_bench_kernel_ncl_metrics_n200(benchmark, backend):
    graph = _large_graph()

    def cold_metrics():
        shared_weight_cache().clear()
        return ncl_metrics(graph, 1 * WEEK)

    metrics = benchmark.pedantic(cold_metrics, rounds=2, iterations=1)
    assert len(metrics) == graph.num_nodes


def test_bench_kernel_path_weight_batch(benchmark, backend):
    rng = np.random.default_rng(11)
    rows = [
        tuple(rng.uniform(1e-6, 1e-3, rng.integers(1, 7)))
        for _ in range(512)
    ]
    padded = pad_rate_rows(rows)
    values = benchmark(hypoexponential_cdf_batch, padded, 6 * 3600.0)
    assert values.shape == (512,)
    assert np.all((values >= 0.0) & (values <= 1.0))


def test_bench_kernel_weight_matrix(benchmark, backend):
    graph = _mit_graph()
    matrix = benchmark.pedantic(
        shortest_path_weight_matrix, args=(graph, 1 * WEEK), rounds=2, iterations=1
    )
    assert matrix.shape == (graph.num_nodes, graph.num_nodes)


def test_bench_kernel_weight_matrix_n200(benchmark, backend):
    graph = _large_graph()
    matrix = benchmark.pedantic(
        shortest_path_weight_matrix, args=(graph, 1 * WEEK), rounds=2, iterations=1
    )
    assert matrix.shape == (graph.num_nodes, graph.num_nodes)


def test_bench_kernel_knn_rows_n2048_sparse(benchmark, backend):
    """The scale-out kernel: k-NN truncated rows on a forced-sparse
    graph just past the auto-sparse threshold."""
    from repro.core.ncl import DEFAULT_KNN_K
    from repro.graph.sparse import knn_weight_rows
    from repro.traces.stream import SparseSyntheticConfig, stream_synthetic_contacts

    stream = stream_synthetic_contacts(
        SparseSyntheticConfig(
            name="bench-knn", num_nodes=2048, duration=2 * DAY,
            total_contacts=40_000, granularity=120.0, seed=5,
        )
    )
    graph = ContactGraph.from_trace(stream, sparse=True)

    def cold_rows():
        shared_weight_cache().clear()
        return knn_weight_rows(graph, 1 * DAY, DEFAULT_KNN_K)

    rows = benchmark.pedantic(cold_rows, rounds=2, iterations=1)
    assert rows.indptr.shape == (graph.num_nodes + 1,)


def test_bench_kernel_weight_matrix_profiled(benchmark, backend):
    """Same kernel with an *enabled* active profiler.

    The bench guard pairs this with ``test_bench_kernel_weight_matrix``
    on the same backend and fails when the span instrumentation costs
    more than 5% — the profiler must stay cheap enough to leave on
    during investigations.
    """
    graph = _mit_graph()
    profiler = Profiler()
    previous = set_active_profiler(profiler)
    try:
        matrix = benchmark.pedantic(
            shortest_path_weight_matrix, args=(graph, 1 * WEEK), rounds=2, iterations=1
        )
    finally:
        set_active_profiler(previous)
    assert matrix.shape == (graph.num_nodes, graph.num_nodes)
    assert "kernel.weight_matrix" in profiler.as_dict()


def _run_static_sim(reelect, mem_profile=False):
    from repro.scenario import (
        RunSpec,
        ScenarioSpec,
        SchemeSpec,
        TraceSpec,
        build_trace,
        scheme_factory,
        simulator_config,
    )
    from repro.sim.simulator import Simulator

    spec = ScenarioSpec(
        trace=TraceSpec(name="mit_reality", node_factor=0.35, time_factor=0.08),
        scheme=SchemeSpec(reelect=reelect),
        run=RunSpec(mem_profile=mem_profile),
    )
    trace = build_trace(spec.trace)
    workload = WorkloadConfig(
        mean_data_lifetime=trace.duration * 0.1, mean_data_size=100_000_000
    )
    sim = Simulator(trace, scheme_factory(spec)(), workload, simulator_config(spec))
    return sim, sim.run()


def test_bench_sim_static(benchmark):
    sim, result = benchmark.pedantic(
        _run_static_sim, args=(False,), rounds=2, iterations=1
    )
    assert result.queries_issued > 0


def test_bench_sim_static_reelect(benchmark):
    """Same static run with re-election enabled.

    The bench guard pairs this with ``test_bench_sim_static`` and fails
    when enabling re-election costs more than 5% — on a network with no
    churn the topology gate must keep the selection pass from running.
    """
    _, result = benchmark.pedantic(
        _run_static_sim, args=(True,), rounds=2, iterations=1
    )
    assert result.queries_issued > 0


def test_bench_sim_static_memory(benchmark):
    """Same static run with ``mem_profile`` sampling enabled.

    The bench guard pairs this with ``test_bench_sim_static`` and fails
    when footprint sampling costs more than 5% — measuring where the
    bytes live must stay cheap enough to switch on the moment a run is
    suspected of bloating.  The final breakdown and the process peak RSS
    are stamped into ``extra_info``, which feeds the guard's memory tier
    (footprint ceiling = 1.2x the committed baseline).
    """
    sim, result = benchmark.pedantic(
        _run_static_sim, args=(False, True), rounds=2, iterations=1
    )
    assert result.queries_issued > 0
    assert sim.memory.enabled and sim.memory.samples
    benchmark.extra_info["peak_rss_mb"] = peak_rss_bytes() / 2**20
    benchmark.extra_info["mem_subsystems"] = sim.memory_breakdown()


def _run_traced_sim(diagnose):
    from repro.obs.recorder import MemoryRecorder
    from repro.scenario import (
        ScenarioSpec,
        SchemeSpec,
        TraceSpec,
        build_trace,
        scheme_factory,
        simulator_config,
    )
    from repro.sim.simulator import Simulator

    spec = ScenarioSpec(
        trace=TraceSpec(name="mit_reality", node_factor=0.35, time_factor=0.08),
        scheme=SchemeSpec(),
    )
    trace = build_trace(spec.trace)
    workload = WorkloadConfig(
        mean_data_lifetime=trace.duration * 0.1, mean_data_size=100_000_000
    )
    recorder = MemoryRecorder()
    sim = Simulator(
        trace, scheme_factory(spec)(), workload, simulator_config(spec),
        recorder=recorder,
    )
    result = sim.run()
    if diagnose:
        from repro.obs.diagnose import run_diagnosis

        diagnosis = run_diagnosis(recorder.events, contact_trace=trace)
        assert diagnosis.num_events > 0
    return result


def test_bench_sim_traced(benchmark):
    result = benchmark.pedantic(_run_traced_sim, args=(False,), rounds=2, iterations=1)
    assert result.queries_issued > 0


def test_bench_sim_traced_diagnose(benchmark):
    """Traced run plus a full ``repro diagnose`` pass on the recording.

    The bench guard pairs this with ``test_bench_sim_traced`` and fails
    when the diagnosis (causal reconstruction, consistency cross-check,
    fidelity calibration) costs more than 50% on top of the traced
    simulation itself — offline post-processing, but it must stay cheap
    enough to run after every traced experiment.
    """
    result = benchmark.pedantic(_run_traced_sim, args=(True,), rounds=2, iterations=1)
    assert result.queries_issued > 0


def test_bench_kernel_knapsack(benchmark, backend):
    items = _knapsack_items(24)
    solution = benchmark(solve_knapsack, items, 400 * MEGABIT)
    assert solution.total_size <= 400 * MEGABIT


def test_bench_kernel_knapsack_n200(benchmark, backend):
    items = _knapsack_items(200)
    solution = benchmark(solve_knapsack, items, 2000 * MEGABIT)
    assert solution.total_size <= 2000 * MEGABIT


#: per-round query count of the streaming-collector throughput benchmark
COLLECTOR_FEED_QUERIES = 20_000


def _feed_streaming_collector(queries):
    collector = MetricsCollector(streaming=True)
    for query in queries:
        collector.on_query_created(query)
        collector.record_delivery(query, query.created_at + 1.0)
    return collector


def test_bench_throughput_streaming_collector(benchmark):
    """Raw bounded-memory collector throughput (queries/sec tier).

    Publishes its deterministic per-round query count through
    ``extra_info["queries"]``; the bench guard divides it by the mean
    round time and fails when queries/sec drops below
    baseline/threshold.
    """
    queries = [
        Query(
            query_id=index,
            requester=0,
            data_id=index,
            created_at=float(index),
            time_constraint=500.0,
        )
        for index in range(COLLECTOR_FEED_QUERIES)
    ]
    collector = benchmark(_feed_streaming_collector, queries)
    assert collector.queries_issued == COLLECTOR_FEED_QUERIES
    benchmark.extra_info["queries"] = COLLECTOR_FEED_QUERIES


def _run_serve_batches(health=None):
    from repro.scenario import (
        RunSpec,
        ScenarioSpec,
        SchemeSpec,
        TraceSpec,
        build_trace,
        scheme_factory,
        simulator_config,
    )

    spec = ScenarioSpec(
        trace=TraceSpec(name="mit_reality", node_factor=0.35, time_factor=0.08),
        scheme=SchemeSpec(),
        run=RunSpec(streaming_metrics=True),
    )
    trace = build_trace(spec.trace)
    workload = WorkloadConfig(
        mean_data_lifetime=trace.duration * 0.1,
        mean_data_size=100_000_000,
        arrival_process="bursty",
    )
    session = ServeSession(
        trace, scheme_factory(spec)(), workload, simulator_config(spec),
        health=health,
    )
    for _ in range(4):
        session.run_batch(rounds=4)
    return session.finalize()


def _run_serve_batches_health():
    from repro.obs.health import HealthMonitor
    from repro.obs.slo import SLO_PRESETS

    return _run_serve_batches(health=HealthMonitor(tuple(SLO_PRESETS.values())))


def test_bench_throughput_serve_batches(benchmark):
    """End-to-end serve-mode throughput on the bench-scale trace.

    The per-round query count is deterministic (fresh session, same
    seed each round), so the guard can derive queries/sec from it.
    """
    result = benchmark.pedantic(_run_serve_batches, rounds=2, iterations=1)
    assert result.queries_issued > 0
    benchmark.extra_info["queries"] = result.queries_issued


def test_bench_throughput_serve_batches_health(benchmark):
    """Monitored twin: same serve run with the live health monitor on.

    Per-batch ``observe_window`` snapshots, all four preset SLO rules,
    and the anomaly detectors run on every batch.  The bench guard
    pairs this with its unmonitored twin and fails when the monitor
    costs more than ``HEALTH_OVERHEAD_THRESHOLD`` (5%).
    """
    result = benchmark.pedantic(_run_serve_batches_health, rounds=2, iterations=1)
    assert result.queries_issued > 0
    benchmark.extra_info["queries"] = result.queries_issued


def _best_of(callable_, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        shared_weight_cache().clear()
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_speedup_ncl_metrics_vs_reference():
    """Acceptance harness: the vectorized Eq. (3) metric must be at
    least 5x faster than the retained pure-Python oracle on the
    mit_reality bench graph, while agreeing to 1e-9."""
    graph = _mit_graph()
    fast_time, fast = _best_of(lambda: ncl_metrics(graph, 1 * WEEK))
    slow_time, slow = _best_of(lambda: _reference_ncl_metrics(graph, 1 * WEEK))
    np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)
    speedup = slow_time / fast_time
    assert speedup >= 5.0, (
        f"ncl_metrics only {speedup:.1f}x faster than reference "
        f"({fast_time * 1e3:.1f} ms vs {slow_time * 1e3:.1f} ms)"
    )


@pytest.mark.skipif(
    "numba" not in kernels.available_backend_names(),
    reason="numba not installed (optional extra)",
)
def test_speedup_numba_vs_python():
    """Acceptance harness for the compiled backend: on N=200 inputs the
    numba kernels must be ≥3x faster than the python backend on
    ncl_metrics, the weight matrix and the knapsack DP — measured after
    warm-up so JIT compilation is excluded — while returning bitwise
    identical results."""
    graph = _large_graph()
    items = _knapsack_items(200)
    cases = {
        "ncl_metrics": lambda: ncl_metrics(graph, 1 * WEEK),
        "weight_matrix": lambda: shortest_path_weight_matrix(graph, 1 * WEEK),
        "knapsack_dp": lambda: solve_knapsack(items, 2000 * MEGABIT),
    }
    for name, fn in cases.items():
        with kernels.use_backend("python"):
            python_time, python_result = _best_of(fn)
        with kernels.use_backend("numba"):
            kernels.warmup()
            fn()  # one untimed pass: exclude any residual compile cost
            numba_time, numba_result = _best_of(fn)
        if isinstance(python_result, np.ndarray):
            assert np.array_equal(python_result, numba_result), name
        else:  # knapsack solution
            assert python_result == numba_result, name
        speedup = python_time / numba_time
        assert speedup >= 3.0, (
            f"{name}: numba only {speedup:.1f}x faster than python "
            f"({numba_time * 1e3:.1f} ms vs {python_time * 1e3:.1f} ms)"
        )


def test_speedup_parallel_runner():
    """run_repeated(workers=4) must match the serial aggregates exactly
    on an 8-seed sweep; the >=2x wall-clock assertion only applies on
    machines with enough cores to show it."""
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="runner-bench",
            num_nodes=12,
            duration=4 * DAY,
            total_contacts=4000,
            granularity=60.0,
            seed=5,
        )
    )
    workload = WorkloadConfig(mean_data_lifetime=8 * HOUR, mean_data_size=10 * MEGABIT)
    seeds = tuple(range(1, 9))

    start = time.perf_counter()
    serial = run_repeated(trace, NoCache, workload, seeds=seeds)
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_repeated(trace, NoCache, workload, seeds=seeds, workers=4)
    parallel_time = time.perf_counter() - start

    assert serial.runs == parallel.runs == len(seeds)
    assert serial.successful_ratio == parallel.successful_ratio
    assert serial.queries_issued == parallel.queries_issued
    assert serial.caching_overhead == parallel.caching_overhead

    if (os.cpu_count() or 1) >= 4:
        speedup = serial_time / parallel_time
        assert speedup >= 2.0, (
            f"parallel sweep only {speedup:.2f}x faster "
            f"({parallel_time:.2f}s vs {serial_time:.2f}s serial)"
        )
