"""Microbenchmarks of the computational kernels.

Unlike the figure benchmarks (whole simulation sweeps, pedantic
single-round), these measure the hot inner loops with normal
pytest-benchmark statistics: the Eq. (2) path weight, the single-source
opportunistic-path computation, the Eq. (3) metric over a full graph,
and the Eq. (7) knapsack under realistic buffer sizes.
"""

import numpy as np

from repro.core.knapsack import KnapsackItem, solve_knapsack
from repro.core.ncl import ncl_metrics
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import shortest_paths_from
from repro.mathutils.hypoexponential import hypoexponential_cdf
from repro.traces.catalog import TRACE_PRESETS
from repro.traces.synthetic import generate_synthetic_trace
from repro.units import MEGABIT, WEEK


def _mit_graph():
    config = TRACE_PRESETS["mit_reality"].synthetic_config(
        seed=1, node_factor=0.6, time_factor=0.12
    )
    return ContactGraph.from_trace(generate_synthetic_trace(config))


def test_bench_kernel_path_weight(benchmark):
    rates = [1 / 3600.0, 1 / 7200.0, 1 / 1800.0, 1 / 5400.0]
    value = benchmark(hypoexponential_cdf, rates, 6 * 3600.0)
    assert 0.0 < value < 1.0


def test_bench_kernel_single_source_paths(benchmark):
    graph = _mit_graph()
    paths = benchmark(shortest_paths_from, graph, 0, 1 * WEEK)
    assert len(paths) >= 1


def test_bench_kernel_ncl_metrics(benchmark):
    graph = _mit_graph()
    metrics = benchmark.pedantic(
        ncl_metrics, args=(graph, 1 * WEEK), rounds=2, iterations=1
    )
    assert len(metrics) == graph.num_nodes


def test_bench_kernel_knapsack(benchmark):
    rng = np.random.default_rng(3)
    items = [
        KnapsackItem(i, float(rng.random()), int(rng.uniform(20, 200) * MEGABIT))
        for i in range(24)
    ]
    solution = benchmark(solve_knapsack, items, 400 * MEGABIT)
    assert solution.total_size <= 400 * MEGABIT
