"""Benchmark: regenerate Fig. 10 (performance vs. data lifetime, 5 schemes).

Paper shapes asserted: every scheme's successful ratio improves with the
data lifetime, the intentional scheme leads NoCache, and NoCache caches
nothing.
"""

from repro.experiments.figures import fig10
from repro.experiments.report import render_figure

LIFETIME_FRACTIONS = (0.08, 0.2, 0.5)


def run(bench_scale):
    return fig10(bench_scale, lifetime_fractions=LIFETIME_FRACTIONS)


def test_bench_fig10(benchmark, bench_scale):
    figures = benchmark.pedantic(run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    for suffix in ("a", "b", "c"):
        print(render_figure(figures[suffix], chart=False))

    ratio = {s.label: s.y for s in figures["a"].series}
    copies = {s.label: s.y for s in figures["c"].series}

    # shape: ratio improves as T_L grows (first vs last sweep point)
    for label, values in ratio.items():
        assert values[-1] >= values[0], f"{label} ratio should improve with T_L"
    # shape: intentional beats NoCache at the longest lifetime
    assert ratio["intentional"][-1] > ratio["nocache"][-1]
    # NoCache never caches
    assert all(v == 0.0 for v in copies["nocache"])
    # intentional maintains cached copies
    assert copies["intentional"][-1] > 0.0
