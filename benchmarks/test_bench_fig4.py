"""Benchmark: regenerate Fig. 4 (NCL metric skew across the four traces)."""

import numpy as np

from repro.experiments.figures import fig4
from repro.experiments.report import render_figure


def test_bench_fig4(benchmark, bench_scale):
    result = benchmark.pedantic(fig4, args=(bench_scale,), rounds=1, iterations=1)
    print()
    # print only the head of each series: top-5 metric values per trace
    for series in result.series:
        print(f"{series.label}: top metrics {np.round(series.y[:5], 3)}")
    # paper shape: "the metric values of a few nodes are much higher than
    # that of other nodes" — compare the top node against the bottom decile
    for series in result.series:
        values = np.array(series.y)
        assert values[0] == values.max()  # sorted descending
        bottom_decile = values[int(0.9 * len(values))]
        assert values[0] > 1.3 * max(bottom_decile, 1e-9), series.label
