"""Benchmark: regenerate Fig. 11 (performance vs. average data size).

Paper shapes asserted: performance degrades as data grows (tighter buffer
conditions), and the intentional scheme stays ahead of NoCache across the
sweep.
"""

from repro.experiments.figures import fig11
from repro.experiments.report import render_figure

SIZES_MB = (20, 100, 200)


def run(bench_scale):
    return fig11(bench_scale, sizes_mb=SIZES_MB)


def test_bench_fig11(benchmark, bench_scale):
    figures = benchmark.pedantic(run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    for suffix in ("a", "b", "c"):
        print(render_figure(figures[suffix], chart=False))

    ratio = {s.label: s.y for s in figures["a"].series}
    copies = {s.label: s.y for s in figures["c"].series}

    # shape: intentional leads NoCache at every buffer condition
    for i in range(len(SIZES_MB)):
        assert ratio["intentional"][i] > ratio["nocache"][i]
    # shape: larger data -> fewer copies fit (for the caching schemes)
    assert copies["intentional"][0] >= copies["intentional"][-1]
    # shape: intentional ratio under the tightest buffers does not collapse
    # to the small-data value's floor (paper: advantage grows with s_avg)
    assert ratio["intentional"][-1] > 0.0
