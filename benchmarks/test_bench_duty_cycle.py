"""Robustness benchmark: sensitivity to device duty cycle.

Real deployments scan intermittently; missing sightings thin the contact
trace.  This sweep thins the MIT-like trace (keeping each contact with
probability f) and measures how gracefully the intentional scheme and
NoCache degrade.  The expectation — intentional retains its lead at
every duty cycle, and both degrade monotonically-ish with connectivity —
is asserted loosely.
"""

from repro.caching.intentional import IntentionalCaching, IntentionalConfig
from repro.caching.nocache import NoCache
from repro.experiments.configs import BENCH_SCALE, load_scaled_trace
from repro.experiments.runner import run_single
from repro.traces.catalog import TRACE_PRESETS
from repro.traces.toolkit import thin_contacts
from repro.units import MEGABIT
from repro.workload.config import WorkloadConfig

FRACTIONS = (1.0, 0.6, 0.3)


def test_bench_duty_cycle(benchmark):
    preset = TRACE_PRESETS["mit_reality"]
    base_trace = load_scaled_trace("mit_reality", BENCH_SCALE)
    workload = WorkloadConfig(
        mean_data_lifetime=base_trace.duration * 0.12,
        mean_data_size=60 * MEGABIT,
    )

    def run():
        rows = []
        for fraction in FRACTIONS:
            trace = (
                base_trace
                if fraction == 1.0
                else thin_contacts(base_trace, fraction, seed=2)
            )
            intentional = run_single(
                trace,
                IntentionalCaching(
                    IntentionalConfig(
                        num_ncls=preset.default_num_ncls,
                        ncl_time_budget=preset.ncl_time_budget,
                    )
                ),
                workload,
                seed=7,
            )
            nocache = run_single(trace, NoCache(), workload, seed=7)
            rows.append((fraction, intentional.successful_ratio, nocache.successful_ratio))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'duty':>5s} {'intentional':>12s} {'nocache':>8s}")
    for fraction, intentional_ratio, nocache_ratio in rows:
        print(f"{fraction:5.1f} {intentional_ratio:12.3f} {nocache_ratio:8.3f}")

    # intentional keeps its lead at every duty cycle
    for _, intentional_ratio, nocache_ratio in rows:
        assert intentional_ratio >= nocache_ratio * 0.9
    # heavy thinning hurts overall delivery
    assert rows[-1][1] <= rows[0][1] + 0.05
