"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ablations of the intentional scheme, each isolating one mechanism
of Sec. V:

* **Algorithm 1** — probabilistic data selection on vs. plain knapsack
  (Sec. V-D3: the probabilistic twist trades local optimality for global
  copy-count control).
* **Response strategy** — Eq. (4) sigmoid vs. path-aware p_CR vs.
  always-respond (Sec. V-C: accessibility vs. transmission overhead).
* **Path objective** — expected-delay vs. max-probability shortest
  opportunistic paths for NCL selection and routing (Sec. IV-A).
"""

from repro.caching.intentional import IntentionalCaching, IntentionalConfig
from repro.core.replacement import UtilityKnapsackPolicy
from repro.experiments.configs import BENCH_SCALE, load_scaled_trace
from repro.experiments.runner import run_single
from repro.graph.paths import PathMode
from repro.traces.catalog import TRACE_PRESETS
from repro.units import MEGABIT
from repro.workload.config import WorkloadConfig


def _setup():
    preset = TRACE_PRESETS["mit_reality"]
    trace = load_scaled_trace("mit_reality", BENCH_SCALE)
    workload = WorkloadConfig(
        mean_data_lifetime=trace.duration * 0.1,
        mean_data_size=100 * MEGABIT,
    )
    return preset, trace, workload


def test_bench_ablation_algorithm1(benchmark):
    """Algorithm 1 on/off: both variants must work; the probabilistic
    variant should not cache *more* copies (it thins popular data)."""
    preset, trace, workload = _setup()

    def run():
        results = {}
        for label, probabilistic in (("algorithm1", True), ("plain_knapsack", False)):
            scheme = IntentionalCaching(
                IntentionalConfig(
                    num_ncls=preset.default_num_ncls,
                    ncl_time_budget=preset.ncl_time_budget,
                ),
                replacement=UtilityKnapsackPolicy(probabilistic=probabilistic),
            )
            results[label] = run_single(trace, scheme, workload, seed=7)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, result in results.items():
        print(
            f"{label:16s} ratio={result.successful_ratio:.3f} "
            f"copies={result.caching_overhead:.2f} "
            f"replaced={result.replaced_items}"
        )
    for result in results.values():
        assert 0.0 <= result.successful_ratio <= 1.0
        assert result.exchanges > 0


def test_bench_ablation_response_strategy(benchmark):
    """Sec. V-C trade-off: always-respond emits the most data copies."""
    preset, trace, workload = _setup()

    def run():
        results = {}
        for strategy in ("always", "sigmoid", "path_aware"):
            scheme = IntentionalCaching(
                IntentionalConfig(
                    num_ncls=preset.default_num_ncls,
                    ncl_time_budget=preset.ncl_time_budget,
                    response_strategy=strategy,
                )
            )
            results[strategy] = run_single(trace, scheme, workload, seed=7)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, result in results.items():
        print(
            f"{label:12s} ratio={result.successful_ratio:.3f} "
            f"emitted={result.responses_emitted} delivered={result.responses_delivered}"
        )
    assert results["always"].responses_emitted >= results["sigmoid"].responses_emitted
    assert results["sigmoid"].successful_ratio > 0.0


def test_bench_ablation_path_mode(benchmark):
    """Expected-delay vs. max-probability path objective."""
    preset, trace, workload = _setup()

    def run():
        results = {}
        for mode in (PathMode.EXPECTED_DELAY, PathMode.MAX_PROBABILITY):
            scheme = IntentionalCaching(
                IntentionalConfig(
                    num_ncls=preset.default_num_ncls,
                    ncl_time_budget=preset.ncl_time_budget,
                    path_mode=mode,
                )
            )
            results[mode.value] = run_single(trace, scheme, workload, seed=7)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, result in results.items():
        print(f"{label:16s} ratio={result.successful_ratio:.3f}")
    ratios = [r.successful_ratio for r in results.values()]
    # the two objectives pick near-identical hubs on these graphs
    assert abs(ratios[0] - ratios[1]) < 0.3
