"""Shared configuration for the figure/table benchmarks.

Each benchmark regenerates one artifact of the paper's evaluation at
``BENCH_SCALE`` (reduced node count and trace length; see DESIGN.md) and
prints the reproduced series so a benchmark run doubles as a results
report.  ``benchmark.pedantic(rounds=1)`` is used throughout: a full
trace-driven simulation sweep is the unit of work, not a microsecond
kernel.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import BENCH_SCALE, ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE
