"""Benchmark: regenerate Table I (trace summary statistics)."""

from repro.experiments.figures import table1
from repro.experiments.report import render_table


def test_bench_table1(benchmark, bench_scale):
    result = benchmark.pedantic(table1, args=(bench_scale,), rounds=1, iterations=1)
    print()
    print(render_table(result))
    assert len(result.rows) == 4
    for row in result.rows:
        assert row["contacts"] > 0
        assert row["devices"] >= 2
