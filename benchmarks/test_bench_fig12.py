"""Benchmark: regenerate Fig. 12 (cache-replacement strategy comparison).

Paper shapes asserted: the utility-knapsack policy (ours) at least
matches the traditional policies on successful ratio under tight buffers,
and replacement overhead stays within the same order of magnitude across
policies (Fig. 12c: "only slight differences").
"""

from repro.experiments.figures import fig12
from repro.experiments.report import render_figure

SIZES_MB = (60, 200)


def run(bench_scale):
    return fig12(bench_scale, sizes_mb=SIZES_MB)


def test_bench_fig12(benchmark, bench_scale):
    figures = benchmark.pedantic(run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    for suffix in ("a", "b", "c"):
        print(render_figure(figures[suffix], chart=False))

    ratio = {s.label: s.y for s in figures["a"].series}
    overhead = {s.label: s.y for s in figures["c"].series}

    tight = -1  # index of the tightest buffer condition (largest s_avg)
    best_traditional = max(
        ratio["fifo"][tight], ratio["lru"][tight], ratio["gds"][tight]
    )
    # generous tolerance: single-seed noise at bench scale
    assert ratio["utility_knapsack"][tight] >= 0.8 * best_traditional
    # replacement overhead exists for all policies once buffers are tight
    for label, values in overhead.items():
        assert all(v >= 0.0 for v in values), label
